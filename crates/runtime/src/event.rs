//! The typed, append-only execution event stream and the [`Recorder`]
//! sinks that consume it.
//!
//! Every engine built on [`EngineCore`](crate::EngineCore) emits one
//! [`ExecEvent`] per observable action — allocator operations, virtual-clock
//! charges, plan changes, recovery-ladder rungs and phase boundaries — in
//! strict execution order. The stream is the single source of truth for all
//! downstream observability: `mimose-exec` folds it into iteration reports,
//! the shadow checkers cross-validate it against the analytic memory model,
//! and `mimose-audit` replays it through an independent shadow allocator.
//!
//! Allocator-level events map 1:1 onto [`TraceEvent`]s (see
//! [`ExecEvent::to_trace_event`]); the stream is a strict superset of the
//! arena's own trace, so anything that audited arena traces audits these.

use mimose_planner::{CheckpointPlan, RecoveryEvent};
use mimose_simgpu::{AllocId, TraceEvent};

/// Which [`TimeBreakdown`](crate::TimeBreakdown) channel a scalar clock
/// charge lands in. Compute/recompute/swap charges carry their own event
/// variants (they are the channels downstream consumers reason about most);
/// the remaining bookkeeping-style channels share [`ExecEvent::ClockCharge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockChannel {
    /// Plan generation / eviction-search time.
    Planning,
    /// Per-tensor metadata maintenance (DTR bookkeeping).
    Bookkeeping,
    /// Allocator call overhead (charged once at iteration finish).
    Allocator,
    /// OOM-recovery overhead (compaction copies, aborted attempts).
    Recovery,
}

/// One event in an engine's execution stream, in strict execution order.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecEvent {
    /// A successful arena allocation.
    Alloc {
        /// Handle returned by the arena.
        id: AllocId,
        /// Start address of the carved range.
        offset: usize,
        /// Aligned length of the carved range.
        size: usize,
        /// Bytes the engine asked for (pre-alignment).
        requested: usize,
        /// Iteration phase issuing the request.
        phase: &'static str,
    },
    /// A free of a live allocation.
    Free {
        /// Handle being released.
        id: AllocId,
        /// Start address of the released range.
        offset: usize,
        /// Aligned length of the released range.
        size: usize,
    },
    /// A genuine allocation failure.
    Oom {
        /// Aligned bytes requested.
        requested: usize,
        /// Total free bytes at the time of failure.
        free_bytes: usize,
        /// Largest contiguous free range at the time of failure.
        largest_free: usize,
        /// Iteration phase issuing the request.
        phase: &'static str,
    },
    /// An injected (spurious) allocation failure from the chaos layer; the
    /// arena state is untouched.
    InjectedOom {
        /// Aligned bytes the failed request asked for.
        requested: usize,
        /// Iteration phase issuing the request.
        phase: &'static str,
    },
    /// The arena was compacted (recovery rung 1).
    Compact {
        /// Bytes of live allocations that changed address.
        moved: usize,
    },
    /// The arena was reset to a single pristine free range.
    Reset,
    /// Useful forward/backward/optimizer compute charged to the clock.
    Compute {
        /// Nanoseconds charged.
        ns: u64,
    },
    /// Recomputation of checkpointed/evicted activations.
    Recompute {
        /// Nanoseconds charged (after any chaos spike factor).
        ns: u64,
    },
    /// Non-overlapped host↔device swap transfer.
    Swap {
        /// Nanoseconds charged.
        ns: u64,
    },
    /// A scalar charge to one of the remaining clock channels.
    ClockCharge {
        /// Destination channel.
        channel: ClockChannel,
        /// Nanoseconds charged.
        ns: u64,
    },
    /// The effective checkpoint plan changed mid-iteration (in-place
    /// demotion). Carries the complete post-change plan so stream consumers
    /// (shadow checkers, auditors) can rebase without engine internals.
    PlanApplied {
        /// The plan now in effect.
        plan: CheckpointPlan,
    },
    /// A recovery-ladder rung was taken.
    Recovery(RecoveryEvent),
    /// A phase boundary — the points where engines and shadow checkers
    /// synchronise with the analytic memory model.
    Boundary {
        /// Boundary kind: `"init"`, `"forward"`, `"backward"`,
        /// `"end-of-forward"`.
        phase: &'static str,
        /// Block index for per-block boundaries.
        index: Option<usize>,
        /// Engine-side live-byte accounting at this boundary (the DTR slot
        /// table's total), when the engine computed it.
        live_hint: Option<usize>,
    },
}

impl ExecEvent {
    /// The allocator-level [`TraceEvent`] this event corresponds to, if
    /// any. Projecting a stream through this function yields exactly the
    /// trace the arena itself would have recorded with tracing enabled.
    #[must_use]
    pub fn to_trace_event(&self) -> Option<TraceEvent> {
        match *self {
            ExecEvent::Alloc {
                id,
                offset,
                size,
                requested,
                ..
            } => Some(TraceEvent::Alloc {
                id,
                offset,
                size,
                requested,
            }),
            ExecEvent::Free { id, offset, size } => Some(TraceEvent::Free { id, offset, size }),
            ExecEvent::Oom {
                requested,
                free_bytes,
                largest_free,
                ..
            } => Some(TraceEvent::Oom {
                requested,
                free_bytes,
                largest_free,
            }),
            ExecEvent::InjectedOom { requested, .. } => Some(TraceEvent::InjectedOom { requested }),
            ExecEvent::Compact { moved } => Some(TraceEvent::Compact { moved }),
            ExecEvent::Reset => Some(TraceEvent::Reset),
            _ => None,
        }
    }
}

/// A sink for [`ExecEvent`]s. Engines emit through `&mut dyn Recorder`, so
/// recording, shadow checking and plain (discarding) execution share one
/// code path.
pub trait Recorder {
    /// Consume one event. Called in strict execution order.
    fn record(&mut self, ev: &ExecEvent);
}

/// Discards every event — the zero-overhead default for plain runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&mut self, _ev: &ExecEvent) {}
}

/// Appends every event to an in-memory log.
#[derive(Debug, Default)]
pub struct EventLog {
    /// The recorded stream, in execution order.
    pub events: Vec<ExecEvent>,
}

impl EventLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Project the allocator-level events into an arena trace (see
    /// [`ExecEvent::to_trace_event`]).
    pub fn to_arena_trace(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter_map(ExecEvent::to_trace_event)
            .collect()
    }

    /// Take ownership of the recorded events, leaving an empty log.
    pub fn take(&mut self) -> Vec<ExecEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Recorder for EventLog {
    #[inline]
    fn record(&mut self, ev: &ExecEvent) {
        self.events.push(ev.clone());
    }
}

/// Fans each event out to two recorders in order (first, then second).
/// Engines use this to run a shadow checker alongside the caller's sink.
pub struct Tee<'a>(pub &'a mut dyn Recorder, pub &'a mut dyn Recorder);

impl Recorder for Tee<'_> {
    #[inline]
    fn record(&mut self, ev: &ExecEvent) {
        self.0.record(ev);
        self.1.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_projection_covers_allocator_events_only() {
        let id = AllocId::from_raw(3);
        let alloc = ExecEvent::Alloc {
            id,
            offset: 0,
            size: 512,
            requested: 100,
            phase: "forward",
        };
        assert_eq!(
            alloc.to_trace_event(),
            Some(TraceEvent::Alloc {
                id,
                offset: 0,
                size: 512,
                requested: 100
            })
        );
        assert_eq!(ExecEvent::Compute { ns: 5 }.to_trace_event(), None);
        assert_eq!(
            ExecEvent::Boundary {
                phase: "init",
                index: None,
                live_hint: None
            }
            .to_trace_event(),
            None
        );
    }

    #[test]
    fn tee_preserves_order_into_both_sinks() {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.record(&ExecEvent::Compute { ns: 1 });
            tee.record(&ExecEvent::Reset);
        }
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.to_arena_trace(), vec![TraceEvent::Reset]);
    }
}
