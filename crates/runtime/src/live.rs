//! The live-block table: which allocations belong to which block.
//!
//! Both engines (and the block engine's demotion rung) share this
//! vocabulary: a block holds handles for its internal activation tensors
//! and its output, plus — for fine (tensor-granular) plans — the indices of
//! internals currently dropped. The table is owned by the engine's policy
//! so relief rungs can evict internals without borrowing engine locals.

use mimose_simgpu::AllocId;

/// One block's live allocations during an iteration.
#[derive(Debug, Default)]
pub struct LiveBlock {
    /// Handles of the block's resident internal activation tensors.
    pub tensor_ids: Vec<AllocId>,
    /// Handle of the block's output checkpoint, while resident.
    pub out_id: Option<AllocId>,
    /// Indices (into the profile's tensor list) of internals currently
    /// dropped by a fine plan.
    pub dropped: Vec<usize>,
}
