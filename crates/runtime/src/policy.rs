//! Materialization policies: the ~200 lines that make one engine differ
//! from another.
//!
//! Both execution engines walk the same forward/backward timeline over an
//! [`EngineCore`]; what distinguishes them is how they respond to memory
//! pressure at an allocation site. The block engine climbs the inline
//! recovery rungs (compact-and-retry, in-place plan demotion); the DTR
//! engine proactively evicts the lowest-h-DTR tensor until the request fits
//! its logical budget. [`policy_alloc`] is the one allocation protocol both
//! share: ask the policy to prepare, attempt the allocation, and on failure
//! let the policy relieve pressure and retry until it runs out of remedies.

use crate::engine::EngineCore;
use crate::report::OomReport;
use mimose_simgpu::{AllocId, Arena, OomError};

/// Where in the iteration an allocation request originates — everything a
/// policy may consult when deciding how to relieve pressure.
#[derive(Debug, Clone, Copy)]
pub struct AllocSite {
    /// Iteration phase (`"const"`, `"input"`, `"forward"`, `"recompute"`,
    /// `"backward"`).
    pub phase: &'static str,
    /// Block currently executing, if any; its tensors are in use and must
    /// not be victimised.
    pub cursor: Option<usize>,
    /// Whether the forward pass is still running (future blocks can shed
    /// upcoming pressure).
    pub in_forward: bool,
}

impl AllocSite {
    /// A site with no executing block (const/input setup).
    #[must_use]
    pub fn setup(phase: &'static str) -> Self {
        AllocSite {
            phase,
            cursor: None,
            in_forward: false,
        }
    }
}

/// Terminal allocation failure after the policy exhausted its remedies.
#[derive(Debug, Clone, Copy)]
pub enum AllocFail {
    /// The arena refused and no relief was possible.
    Oom(OomError),
    /// An eviction-driven policy found no evictable victim (everything live
    /// is pinned or dead).
    NoVictim {
        /// Bytes the failed request asked for.
        requested: usize,
    },
}

impl AllocFail {
    /// Bytes the failed request asked for.
    #[must_use]
    pub fn requested(&self) -> usize {
        match *self {
            AllocFail::Oom(e) => e.requested,
            AllocFail::NoVictim { requested } => requested,
        }
    }

    /// Shape the failure into the shared report schema. `Oom` keeps the
    /// allocator's own free-space snapshot; `NoVictim` never reached the
    /// allocator, so the arena's current picture is sampled instead.
    #[must_use]
    pub fn to_report(&self, arena: &Arena, phase: &'static str) -> OomReport {
        match self {
            AllocFail::Oom(e) => OomReport::from_error(e, phase),
            AllocFail::NoVictim { requested } => OomReport::from_arena(arena, *requested, phase),
        }
    }
}

/// How an engine responds to memory pressure at an allocation site.
pub trait MaterializationPolicy {
    /// Called once before the allocation attempt. Eviction-driven policies
    /// make room under their logical budget here; plan-driven policies do
    /// nothing.
    fn prepare(
        &mut self,
        core: &mut EngineCore<'_>,
        bytes: usize,
        site: &AllocSite,
    ) -> Result<(), AllocFail> {
        let _ = (core, bytes, site);
        Ok(())
    }

    /// Called after a failed attempt. Return `Ok(true)` to retry after
    /// relieving pressure (compaction, demotion, one eviction), `Ok(false)`
    /// when out of remedies — the caller then surfaces the original arena
    /// error — or `Err` for a policy-level failure of its own.
    fn relieve(
        &mut self,
        core: &mut EngineCore<'_>,
        err: &OomError,
        bytes: usize,
        site: &AllocSite,
    ) -> Result<bool, AllocFail>;
}

/// A policy with no remedies: every arena failure is terminal. This is the
/// legacy report-and-die behaviour of the engines without a recovery config.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRelief;

impl MaterializationPolicy for NoRelief {
    fn relieve(
        &mut self,
        _core: &mut EngineCore<'_>,
        _err: &OomError,
        _bytes: usize,
        _site: &AllocSite,
    ) -> Result<bool, AllocFail> {
        Ok(false)
    }
}

/// The shared allocation protocol: prepare, attempt, and on failure let the
/// policy relieve pressure and retry until it gives up.
pub fn policy_alloc<P: MaterializationPolicy + ?Sized>(
    core: &mut EngineCore<'_>,
    policy: &mut P,
    bytes: usize,
    site: &AllocSite,
) -> Result<AllocId, AllocFail> {
    policy.prepare(core, bytes, site)?;
    loop {
        match core.try_alloc(bytes, site.phase) {
            Ok(id) => return Ok(id),
            Err(e) => {
                if !policy.relieve(core, &e, bytes, site)? {
                    return Err(AllocFail::Oom(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventLog, ExecEvent, NullRecorder};
    use mimose_simgpu::DeviceProfile;

    /// Frees one parked allocation per relieve call — enough to model a
    /// policy that actually cures pressure.
    struct FreeOne {
        parked: Vec<AllocId>,
    }

    impl MaterializationPolicy for FreeOne {
        fn relieve(
            &mut self,
            core: &mut EngineCore<'_>,
            _err: &OomError,
            _bytes: usize,
            _site: &AllocSite,
        ) -> Result<bool, AllocFail> {
            match self.parked.pop() {
                Some(id) => {
                    core.free(id);
                    Ok(true)
                }
                None => Ok(false),
            }
        }
    }

    #[test]
    fn no_relief_surfaces_the_arena_error() {
        let dev = DeviceProfile::v100();
        let mut rec = NullRecorder;
        let mut core = EngineCore::new(4096, &dev, &mut rec);
        let _hog = core.try_alloc(4096, "forward").expect("fits");
        let site = AllocSite::setup("forward");
        let fail = policy_alloc(&mut core, &mut NoRelief, 1024, &site).expect_err("full");
        assert_eq!(fail.requested(), 1024);
        let report = fail.to_report(&core.arena, "forward");
        assert_eq!(report.free_bytes, 0);
        assert!(!report.is_fragmentation());
    }

    #[test]
    fn relieving_policy_retries_until_it_fits() {
        let dev = DeviceProfile::v100();
        let mut log = EventLog::new();
        let mut core = EngineCore::new(4 * 512, &dev, &mut log);
        let parked = vec![
            core.try_alloc(512, "forward").expect("fits"),
            core.try_alloc(512, "forward").expect("fits"),
            core.try_alloc(512, "forward").expect("fits"),
            core.try_alloc(512, "forward").expect("fits"),
        ];
        let mut pol = FreeOne { parked };
        let site = AllocSite::setup("backward");
        let id = policy_alloc(&mut core, &mut pol, 1024, &site).expect("relieved");
        assert_eq!(core.arena.size_of(id), Some(1024));
        // Two frees were needed for a 1024 B request in a full arena; the
        // stream shows the failed attempts interleaved with the relief.
        let ooms = log
            .events
            .iter()
            .filter(|e| matches!(e, ExecEvent::Oom { .. }))
            .count();
        assert_eq!(ooms, 2);
        assert_eq!(pol.parked.len(), 2);
    }
}
