//! Iteration and epoch reports: the measurements every experiment consumes.
//!
//! These types used to live in `mimose-exec`; they moved here with the
//! event-sourced runtime core so that every engine (and every stream
//! consumer) shares one report schema. `mimose-exec` re-exports them
//! unchanged.

use mimose_models::ModelInput;
use mimose_planner::RecoveryEvent;
use mimose_simgpu::{Arena, OomError};

/// Why an iteration failed.
#[derive(Debug, Clone)]
pub struct OomReport {
    /// Bytes requested when the failure occurred.
    pub requested: usize,
    /// Total free bytes at the time.
    pub free_bytes: usize,
    /// Largest contiguous free range at the time.
    pub largest_free: usize,
    /// Where in the iteration the failure happened.
    pub phase: &'static str,
}

impl OomReport {
    /// Build a report from the allocator's own error. This is *the* way
    /// every engine shapes its OOM reports, so audit/exp consumers see one
    /// schema regardless of which engine failed.
    #[must_use]
    pub fn from_error(e: &OomError, phase: &'static str) -> Self {
        OomReport {
            requested: e.requested,
            free_bytes: e.free_bytes,
            largest_free: e.largest_free,
            phase,
        }
    }

    /// Build a report for a failure detected *outside* the allocator (e.g.
    /// a budget check that never reached `alloc`), sampling the arena's
    /// current free-space picture.
    #[must_use]
    pub fn from_arena(arena: &Arena, requested: usize, phase: &'static str) -> Self {
        OomReport {
            requested,
            free_bytes: arena.free_bytes(),
            largest_free: arena.largest_free(),
            phase,
        }
    }

    /// True when the failure is due to fragmentation rather than genuine
    /// exhaustion (mirrors [`OomError::is_fragmentation`]).
    #[must_use]
    pub fn is_fragmentation(&self) -> bool {
        self.free_bytes >= self.requested
    }
}

/// Virtual-time breakdown of one iteration (the Fig 5 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Useful forward+backward+optimizer compute, ns.
    pub compute_ns: u64,
    /// Recomputation of checkpointed/evicted activations, ns.
    pub recompute_ns: u64,
    /// Plan generation (estimator + scheduler, or DTR eviction search), ns.
    pub planning_ns: u64,
    /// Per-tensor metadata maintenance (DTR cost bookkeeping), ns.
    pub bookkeeping_ns: u64,
    /// Allocator call overhead, ns.
    pub allocator_ns: u64,
    /// Non-overlapped host↔device swap transfer time (hybrid planners), ns.
    pub swap_ns: u64,
    /// OOM-recovery overhead: arena compaction copies plus the full elapsed
    /// time of aborted attempts that were restarted, ns. Zero on the happy
    /// path.
    pub recovery_ns: u64,
}

impl TimeBreakdown {
    /// Total iteration time, ns.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.compute_ns
            + self.recompute_ns
            + self.planning_ns
            + self.bookkeeping_ns
            + self.allocator_ns
            + self.swap_ns
            + self.recovery_ns
    }

    /// Fraction of the iteration spent outside useful compute.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            return 0.0;
        }
        (t - self.compute_ns) as f64 / t as f64
    }

    /// Accumulate another breakdown.
    pub fn add(&mut self, other: &TimeBreakdown) {
        self.compute_ns += other.compute_ns;
        self.recompute_ns += other.recompute_ns;
        self.planning_ns += other.planning_ns;
        self.bookkeeping_ns += other.bookkeeping_ns;
        self.allocator_ns += other.allocator_ns;
        self.swap_ns += other.swap_ns;
        self.recovery_ns += other.recovery_ns;
    }
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Iteration number.
    pub iter: usize,
    /// The collated input.
    pub input: ModelInput,
    /// The paper's scalar input size.
    pub input_size: usize,
    /// Virtual-time breakdown.
    pub time: TimeBreakdown,
    /// Peak logically-allocated bytes.
    pub peak_bytes: usize,
    /// Peak address-space extent (≈ bytes actually reserved on the device).
    pub peak_extent: usize,
    /// Peak fragmentation (free-but-unusable bytes).
    pub frag_bytes: usize,
    /// Number of blocks/tensors checkpointed or evicted this iteration.
    pub dropped_units: usize,
    /// Whether this was a shuttle (collection) iteration.
    pub shuttle: bool,
    /// OOM failure, if the iteration could not complete.
    pub oom: Option<OomReport>,
    /// Recovery-ladder actions taken this iteration, in chronological order
    /// (empty on the happy path). Present even when `oom` is `Some`: a
    /// fatal iteration carries the full chain of remedies that were tried.
    pub recovery: Vec<RecoveryEvent>,
}

impl IterationReport {
    /// Whether the iteration completed within budget.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.oom.is_none()
    }

    /// Whether the iteration completed only thanks to the recovery ladder.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.ok() && !self.recovery.is_empty()
    }
}

/// Aggregate over a run of iterations.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Iterations simulated.
    pub iters: usize,
    /// Total virtual time, ns.
    pub total_ns: u64,
    /// Accumulated breakdown.
    pub time: TimeBreakdown,
    /// Maximum peak bytes over all iterations.
    pub max_peak_bytes: usize,
    /// Maximum address-space extent over all iterations.
    pub max_peak_extent: usize,
    /// Maximum fragmentation over all iterations.
    pub max_frag_bytes: usize,
    /// Iterations that hit OOM.
    pub oom_iters: usize,
    /// Shuttle iterations.
    pub shuttle_iters: usize,
    /// Iterations that completed only via the recovery ladder.
    pub recovered_iters: usize,
    /// Total recovery events across all iterations.
    pub recovery_events: usize,
}

impl RunSummary {
    /// Fold one iteration into the summary.
    pub fn absorb(&mut self, r: &IterationReport) {
        self.iters += 1;
        self.total_ns += r.time.total_ns();
        self.time.add(&r.time);
        self.max_peak_bytes = self.max_peak_bytes.max(r.peak_bytes);
        self.max_peak_extent = self.max_peak_extent.max(r.peak_extent);
        self.max_frag_bytes = self.max_frag_bytes.max(r.frag_bytes);
        if !r.ok() {
            self.oom_iters += 1;
        }
        if r.shuttle {
            self.shuttle_iters += 1;
        }
        if r.recovered() {
            self.recovered_iters += 1;
        }
        self.recovery_events += r.recovery.len();
    }

    /// Mean iteration time in ns.
    #[must_use]
    pub fn mean_iter_ns(&self) -> u64 {
        if self.iters == 0 {
            0
        } else {
            self.total_ns / self.iters as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let t = TimeBreakdown {
            compute_ns: 100,
            recompute_ns: 20,
            planning_ns: 5,
            bookkeeping_ns: 10,
            allocator_ns: 1,
            swap_ns: 4,
            recovery_ns: 3,
        };
        assert_eq!(t.total_ns(), 143);
        assert!((t.overhead_fraction() - 43.0 / 143.0).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_maxima() {
        let mut s = RunSummary::default();
        let mk = |peak, oom| IterationReport {
            iter: 0,
            input: ModelInput::tokens(1, 1),
            input_size: 1,
            time: TimeBreakdown {
                compute_ns: 10,
                ..Default::default()
            },
            peak_bytes: peak,
            peak_extent: peak,
            frag_bytes: 1,
            dropped_units: 0,
            shuttle: false,
            oom,
            recovery: Vec::new(),
        };
        s.absorb(&mk(100, None));
        s.absorb(&mk(
            50,
            Some(OomReport {
                requested: 1,
                free_bytes: 0,
                largest_free: 0,
                phase: "fwd",
            }),
        ));
        assert_eq!(s.iters, 2);
        assert_eq!(s.max_peak_bytes, 100);
        assert_eq!(s.oom_iters, 1);
        assert_eq!(s.mean_iter_ns(), 10);
    }

    #[test]
    fn oom_report_helpers_share_one_schema() {
        let mut arena = Arena::new(4096);
        let _a = arena.alloc(4096).expect("fits");
        let err = arena.alloc(1024).expect_err("full");
        let from_err = OomReport::from_error(&err, "forward");
        let from_arena = OomReport::from_arena(&arena, err.requested, "forward");
        assert_eq!(from_err.requested, from_arena.requested);
        assert_eq!(from_err.free_bytes, from_arena.free_bytes);
        assert_eq!(from_err.largest_free, from_arena.largest_free);
        assert_eq!(from_err.phase, from_arena.phase);
        assert!(!from_err.is_fragmentation());
    }

    #[test]
    fn recovered_iterations_are_counted() {
        use mimose_planner::{RecoveryEvent, RecoveryRung};
        let ev = RecoveryEvent {
            rung: RecoveryRung::CoalesceRetry,
            attempt: 0,
            phase: "forward",
            requested: 1024,
            ckpt_before: 0,
            ckpt_after: 0,
            shrink_factor: 1.0,
            time_cost_ns: 5,
            freed_bytes: 512,
        };
        let r = IterationReport {
            iter: 0,
            input: ModelInput::tokens(1, 1),
            input_size: 1,
            time: TimeBreakdown::default(),
            peak_bytes: 1,
            peak_extent: 1,
            frag_bytes: 0,
            dropped_units: 0,
            shuttle: false,
            oom: None,
            recovery: vec![ev],
        };
        assert!(r.recovered());
        let mut s = RunSummary::default();
        s.absorb(&r);
        assert_eq!(s.recovered_iters, 1);
        assert_eq!(s.recovery_events, 1);
        assert_eq!(s.oom_iters, 0);
    }
}
