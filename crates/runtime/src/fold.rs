//! Folding an [`ExecEvent`] stream back into iteration measurements.
//!
//! The fold replays the allocator-level events over an address-space model
//! that mirrors the arena's watermark sampling discipline *exactly* —
//! fragmentation and extent are sampled only after successful allocations,
//! footprint on both allocation and free, compaction slides live ranges
//! down preserving address order and samples nothing — and sums the time
//! channels from the charge events. A recorded run's report is therefore
//! fully reconstructible from its stream: the differential tests assert
//! byte-identity between the two, which pins the engines' event emission to
//! their actual behaviour.

use crate::event::{ClockChannel, ExecEvent};
use crate::report::TimeBreakdown;
use mimose_planner::RecoveryEvent;
use std::collections::BTreeMap;

/// The measurements reconstructed from one event stream.
#[derive(Debug, Clone, Default)]
pub struct EventFold {
    /// Time channels summed from the charge events.
    pub time: TimeBreakdown,
    /// High-watermark of live bytes (the report's `peak_bytes`).
    pub peak_used: usize,
    /// High-watermark of fragmentation (the report's `frag_bytes`).
    pub peak_frag: usize,
    /// High-watermark of the address-space extent.
    pub peak_extent: usize,
    /// High-watermark of `used + fragmentation`.
    pub peak_footprint: usize,
    /// Live bytes at the end of the stream.
    pub live_bytes: usize,
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Genuine allocation failures (terminal or later relieved).
    pub oom_events: u64,
    /// Injected (chaos) allocation failures.
    pub injected_ooms: u64,
    /// Compactions.
    pub compactions: u64,
    /// Mid-iteration plan changes (demotions).
    pub plan_changes: usize,
    /// Recovery-ladder events, in stream order.
    pub recovery: Vec<RecoveryEvent>,
}

impl EventFold {
    /// The report's `peak_extent` field: extent and footprint watermarks
    /// are folded together exactly as the engines do at finish.
    #[must_use]
    pub fn report_extent(&self) -> usize {
        self.peak_extent.max(self.peak_footprint)
    }
}

/// Largest free gap between live ranges in `[0, capacity)`.
fn largest_gap(live: &BTreeMap<usize, usize>, capacity: usize) -> usize {
    let mut cursor = 0usize;
    let mut largest = 0usize;
    for (&offset, &len) in live {
        largest = largest.max(offset - cursor);
        cursor = offset + len;
    }
    largest.max(capacity - cursor)
}

/// Replay `events` over an arena of `capacity` bytes.
#[must_use]
pub fn fold_events(capacity: usize, events: &[ExecEvent]) -> EventFold {
    let mut f = EventFold::default();
    // Live ranges by start address; disjoint by construction of the stream.
    let mut live: BTreeMap<usize, usize> = BTreeMap::new();
    let mut used = 0usize;
    let frag = |live: &BTreeMap<usize, usize>, used: usize| {
        (capacity - used) - largest_gap(live, capacity)
    };
    for ev in events {
        match ev {
            ExecEvent::Alloc { offset, size, .. } => {
                live.insert(*offset, *size);
                used += size;
                f.allocs += 1;
                f.peak_used = f.peak_used.max(used);
                let fr = frag(&live, used);
                f.peak_frag = f.peak_frag.max(fr);
                f.peak_extent = f.peak_extent.max(offset + size);
                f.peak_footprint = f.peak_footprint.max(used + fr);
            }
            ExecEvent::Free { offset, size, .. } => {
                live.remove(offset);
                used -= size;
                f.frees += 1;
                f.peak_footprint = f.peak_footprint.max(used + frag(&live, used));
            }
            ExecEvent::Oom { .. } => f.oom_events += 1,
            ExecEvent::InjectedOom { .. } => f.injected_ooms += 1,
            ExecEvent::Compact { .. } => {
                // Mirror the arena's deterministic slide: live ranges pack
                // to the bottom preserving address order; no watermark is
                // sampled (compaction only merges free space).
                let ranges: Vec<usize> = live.values().copied().collect();
                live.clear();
                let mut cursor = 0usize;
                for len in ranges {
                    live.insert(cursor, len);
                    cursor += len;
                }
                f.compactions += 1;
            }
            ExecEvent::Reset => {
                live.clear();
                used = 0;
            }
            ExecEvent::Compute { ns } => f.time.compute_ns += ns,
            ExecEvent::Recompute { ns } => f.time.recompute_ns += ns,
            ExecEvent::Swap { ns } => f.time.swap_ns += ns,
            ExecEvent::ClockCharge { channel, ns } => match channel {
                ClockChannel::Planning => f.time.planning_ns += ns,
                ClockChannel::Bookkeeping => f.time.bookkeeping_ns += ns,
                ClockChannel::Allocator => f.time.allocator_ns += ns,
                ClockChannel::Recovery => f.time.recovery_ns += ns,
            },
            ExecEvent::PlanApplied { .. } => f.plan_changes += 1,
            ExecEvent::Recovery(ev) => f.recovery.push(ev.clone()),
            ExecEvent::Boundary { .. } => {}
        }
    }
    f.live_bytes = used;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_simgpu::AllocId;

    fn alloc(raw: u64, offset: usize, size: usize) -> ExecEvent {
        ExecEvent::Alloc {
            id: AllocId::from_raw(raw),
            offset,
            size,
            requested: size,
            phase: "forward",
        }
    }

    fn free(raw: u64, offset: usize, size: usize) -> ExecEvent {
        ExecEvent::Free {
            id: AllocId::from_raw(raw),
            offset,
            size,
        }
    }

    #[test]
    fn fold_mirrors_the_arena_sampling_discipline() {
        // Three granules live, free the middle one: fragmentation appears
        // only at the *next* successful alloc, footprint tracks the free.
        let capacity = 4 * 512;
        let events = vec![
            alloc(0, 0, 512),
            alloc(1, 512, 512),
            alloc(2, 1024, 512),
            free(1, 512, 512),
            // Hole at 512 (512 B); next alloc goes above (first-fit would
            // reuse it — the stream is the authority, not a fit policy).
            alloc(3, 1536, 512),
        ];
        let f = fold_events(capacity, &events);
        assert_eq!(f.peak_used, 3 * 512);
        assert_eq!(f.live_bytes, 3 * 512);
        // After the last alloc: free = 512 in one hole, largest gap 512 —
        // frag 0; but footprint peaked when the hole coexisted with the
        // trailing free range (largest gap 1024, free 1536 → frag 512).
        assert_eq!(f.peak_frag, 512 - 512);
        assert_eq!(f.peak_footprint, 2 * 512 + 512);
        assert_eq!(f.peak_extent, 2048);
        assert_eq!(f.allocs, 4);
        assert_eq!(f.frees, 1);
    }

    #[test]
    fn compact_slides_ranges_in_address_order() {
        let capacity = 4 * 512;
        let events = vec![
            alloc(0, 0, 512),
            alloc(1, 512, 512),
            alloc(2, 1024, 512),
            free(0, 0, 512),
            ExecEvent::Compact { moved: 1024 },
            // Post-slide the survivors sit at 0 and 512; the arena emits
            // the *new* offsets on later frees.
            free(1, 0, 512),
            free(2, 512, 512),
        ];
        let f = fold_events(capacity, &events);
        assert_eq!(f.live_bytes, 0);
        assert_eq!(f.compactions, 1);
    }

    #[test]
    fn time_channels_sum_from_charge_events() {
        let events = vec![
            ExecEvent::Compute { ns: 100 },
            ExecEvent::Recompute { ns: 20 },
            ExecEvent::Swap { ns: 4 },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Planning,
                ns: 5,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Bookkeeping,
                ns: 10,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Allocator,
                ns: 1,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Recovery,
                ns: 3,
            },
        ];
        let f = fold_events(1 << 20, &events);
        assert_eq!(f.time.total_ns(), 143);
        assert_eq!(f.time.compute_ns, 100);
        assert_eq!(f.time.recovery_ns, 3);
    }
}
