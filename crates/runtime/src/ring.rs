//! Compact ring-buffer event recording.
//!
//! [`RingRecorder`] is a fixed-capacity, reusable [`Recorder`] sink that
//! stores the event stream as a packed binary encoding — one `u8` tag plus
//! LEB128 varint payload fields per event — instead of a `Vec<ExecEvent>`
//! of full enum values. A recorded block iteration costs a handful of bytes
//! per event and **zero** per-iteration allocations once the buffer is
//! warm: `clear()` keeps the allocation (and the phase intern table), so
//! one recorder serves every iteration of a run.
//!
//! The encoding is lossless: [`RingRecorder::decode`] reconstructs the
//! exact `Vec<ExecEvent>` that an [`EventLog`](crate::EventLog) would have
//! captured — including the identical `&'static str` phase pointers, via a
//! per-instance intern table — so `fold_events`, the shadow checkers
//! (through [`Tee`](crate::Tee)) and the audit replay all keep working on
//! ring-recorded streams, byte-for-byte.
//!
//! When the buffer is full the *oldest* complete events are evicted to make
//! room (the recorder is a true ring); [`RingRecorder::dropped_events`]
//! counts evictions so consumers that need the full stream can detect
//! truncation. The engines size their rings from the workload shape so the
//! recorded paths never evict in practice — the byte-identity differential
//! suites pin that.

use crate::event::{ClockChannel, ExecEvent, Recorder};
use mimose_planner::{CheckpointPlan, RecoveryEvent, RecoveryRung};
use mimose_simgpu::AllocId;

/// Event tags. One byte each; payload layout is fixed per tag.
const TAG_ALLOC: u8 = 0;
const TAG_FREE: u8 = 1;
const TAG_OOM: u8 = 2;
const TAG_INJECTED_OOM: u8 = 3;
const TAG_COMPACT: u8 = 4;
const TAG_RESET: u8 = 5;
const TAG_COMPUTE: u8 = 6;
const TAG_RECOMPUTE: u8 = 7;
const TAG_SWAP: u8 = 8;
const TAG_CLOCK_CHARGE: u8 = 9;
const TAG_PLAN_APPLIED: u8 = 10;
const TAG_RECOVERY: u8 = 11;
const TAG_BOUNDARY: u8 = 12;

/// Append `v` as an unsigned LEB128 varint (1 byte for values < 128, which
/// covers most tags, indices and small sizes in practice).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from `buf` at `*pos`, advancing `*pos`. Returns
/// `None` on truncated or over-long input instead of panicking: the decoder
/// must stay panic-free on arbitrary bytes.
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_varint(buf, v as u64);
}

/// Stack scratch for one fixed-shape event frame: a length header byte, a
/// tag, and at most six varints of ≤ 10 bytes each. Only `PlanApplied` and
/// `Recovery` (whose payloads grow with the plan) use the heap scratch.
const SMALL_MAX: usize = 64;

/// [`put_varint`] into the stack frame: identical byte sequence, but built
/// branch-free — 7-bit groups spread into a `u64` and stored in one 8-byte
/// write. The per-byte loop's data-dependent trip count mispredicts on
/// mixed-size fields, and those stalls (not raw instruction count) are what
/// showed up as recorder overhead inside the engine's hot loop.
#[inline]
fn arr_varint(buf: &mut [u8; SMALL_MAX], pos: &mut usize, v: u64) {
    if v < 0x80 {
        buf[*pos] = v as u8;
        *pos += 1;
        return;
    }
    if v >> 56 != 0 {
        // 9–10 byte encodings; never hit by engine streams, keep it cold.
        arr_varint_slow(buf, pos, v);
        return;
    }
    // 2..=8 payload bytes: spread each 7-bit group into its own byte, set
    // continuation bits on all but the last, store once.
    let bits = 64 - v.leading_zeros() as usize;
    let n = bits.div_ceil(7);
    let x = (v & 0x7f)
        | (v & (0x7f << 7)) << 1
        | (v & (0x7f << 14)) << 2
        | (v & (0x7f << 21)) << 3
        | (v & (0x7f << 28)) << 4
        | (v & (0x7f << 35)) << 5
        | (v & (0x7f << 42)) << 6
        | (v & (0x7f << 49)) << 7
        | (0x8080_8080_8080_8080u64 >> (8 * (9 - n)));
    buf[*pos..*pos + 8].copy_from_slice(&x.to_le_bytes());
    *pos += n;
}

/// Loop fallback for ≥ 2⁵⁷ values (9–10 LEB128 bytes).
#[cold]
fn arr_varint_slow(buf: &mut [u8; SMALL_MAX], pos: &mut usize, mut v: u64) {
    while v >= 0x80 {
        buf[*pos] = (v as u8) | 0x80;
        *pos += 1;
        v >>= 7;
    }
    buf[*pos] = v as u8;
    *pos += 1;
}

#[inline]
fn arr_usize(buf: &mut [u8; SMALL_MAX], pos: &mut usize, v: usize) {
    arr_varint(buf, pos, v as u64);
}

#[inline]
fn arr_byte(buf: &mut [u8; SMALL_MAX], pos: &mut usize, b: u8) {
    buf[*pos] = b;
    *pos += 1;
}

/// `Option<usize>` as a presence byte followed by the value: `0` = `None`,
/// `1 v` = `Some(v)`. Exact round-trip for every value including
/// `usize::MAX` (no `+1` bias tricks).
#[inline]
fn arr_opt_usize(buf: &mut [u8; SMALL_MAX], pos: &mut usize, v: Option<usize>) {
    match v {
        None => arr_byte(buf, pos, 0),
        Some(v) => {
            arr_byte(buf, pos, 1);
            arr_usize(buf, pos, v);
        }
    }
}

fn get_usize(buf: &[u8], pos: &mut usize) -> Option<usize> {
    get_varint(buf, pos).and_then(|v| usize::try_from(v).ok())
}

fn get_opt_usize(buf: &[u8], pos: &mut usize) -> Option<Option<usize>> {
    let flag = *buf.get(*pos)?;
    *pos += 1;
    match flag {
        0 => Some(None),
        1 => get_usize(buf, pos).map(Some),
        _ => None,
    }
}

fn channel_tag(ch: ClockChannel) -> u8 {
    match ch {
        ClockChannel::Planning => 0,
        ClockChannel::Bookkeeping => 1,
        ClockChannel::Allocator => 2,
        ClockChannel::Recovery => 3,
    }
}

fn channel_from_tag(t: u8) -> Option<ClockChannel> {
    match t {
        0 => Some(ClockChannel::Planning),
        1 => Some(ClockChannel::Bookkeeping),
        2 => Some(ClockChannel::Allocator),
        3 => Some(ClockChannel::Recovery),
        _ => None,
    }
}

fn rung_tag(r: RecoveryRung) -> u8 {
    match r {
        RecoveryRung::CoalesceRetry => 0,
        RecoveryRung::Demotion => 1,
        RecoveryRung::Restart => 2,
        RecoveryRung::Fallback => 3,
    }
}

fn rung_from_tag(t: u8) -> Option<RecoveryRung> {
    match t {
        0 => Some(RecoveryRung::CoalesceRetry),
        1 => Some(RecoveryRung::Demotion),
        2 => Some(RecoveryRung::Restart),
        3 => Some(RecoveryRung::Fallback),
        _ => None,
    }
}

/// A fixed-capacity [`Recorder`] that stores the stream as packed bytes.
///
/// See the module-level docs for the design; the short version:
///
/// ```
/// use mimose_runtime::{ExecEvent, Recorder, RingRecorder};
///
/// let mut ring = RingRecorder::new(4096);
/// ring.record(&ExecEvent::Compute { ns: 250 });
/// ring.record(&ExecEvent::Reset);
/// assert_eq!(
///     ring.decode(),
///     vec![ExecEvent::Compute { ns: 250 }, ExecEvent::Reset]
/// );
/// ring.clear(); // keeps the allocation for the next iteration
/// assert_eq!(ring.len_events(), 0);
/// ```
#[derive(Debug)]
pub struct RingRecorder {
    /// Packed frames: `varint(payload_len)` then `tag + fields`. The valid
    /// region is `buf[start..]`; eviction advances `start` and the buffer
    /// is re-based lazily so appends stay amortized O(1).
    buf: Vec<u8>,
    /// Offset of the oldest live frame within `buf`.
    start: usize,
    /// Hard byte bound on the live region (`buf.len() - start`).
    capacity: usize,
    /// Scratch buffer one event is encoded into before framing; reused
    /// across events so encoding never allocates once warm.
    scratch: Vec<u8>,
    /// Phase intern table. Encoding stores indices into this table and
    /// decoding reads the original `&'static str` back out of it, so phase
    /// pointers round-trip exactly. Survives `clear()`.
    phases: Vec<&'static str>,
    /// Grow the capacity instead of evicting when full (recorded entry
    /// points, which must return the complete stream, set this).
    grow: bool,
    /// Index of the most recently interned phase (one-entry intern cache).
    last_interned: usize,
    /// Live (decodable) events in the buffer.
    events: usize,
    /// Events evicted to make room since construction (not reset by
    /// `clear()`): non-zero means decode returns a truncated suffix.
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity_bytes` of packed events. A typical
    /// block-engine event packs to well under 32 bytes, so even small rings
    /// hold thousands of events.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        // Clamp to one full stack frame so `push_small` can rely on a frame
        // always fitting an empty ring.
        let capacity = capacity_bytes.max(SMALL_MAX);
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            start: 0,
            capacity,
            scratch: Vec::with_capacity(64),
            phases: Vec::new(),
            grow: false,
            last_interned: 0,
            events: 0,
            dropped: 0,
        }
    }

    /// A ring sized for one recorded engine iteration over `blocks` blocks
    /// (or DTR slots), with enough headroom that recovery chains, demotion
    /// plans and chaos-injected churn never evict: 4 KiB per block against
    /// a measured ~1.2 KiB per block on the densest profile in the task
    /// suite (T5's ~90 events/block), plus a fixed floor for
    /// iteration-level events.
    #[must_use]
    pub fn for_blocks(blocks: usize) -> Self {
        Self::new(64 * 1024 + blocks.saturating_mul(4 * 1024))
    }

    /// Switch this ring from evict-on-full to grow-on-full: when a frame
    /// does not fit, the capacity doubles (at least to the required size)
    /// instead of dropping the oldest events. The recorded entry points —
    /// which must hand back the *complete* stream for `fold_events` and
    /// audit replay — use this so an unusually event-dense profile can
    /// never silently truncate its own evidence; steady-state reuse via
    /// [`clear`](Self::clear) still never re-allocates once the buffer has
    /// reached its high-water mark.
    #[must_use]
    pub fn growable(mut self) -> Self {
        self.grow = true;
        self
    }

    /// Byte capacity of the live region.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Packed bytes currently live in the ring.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Events currently live (decodable) in the ring.
    #[must_use]
    pub fn len_events(&self) -> usize {
        self.events
    }

    /// `true` when no events are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Events evicted from the front to make room since construction. When
    /// this is non-zero, [`decode`](Self::decode) returns only the newest
    /// suffix of the stream.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Forget the recorded events but keep the buffer allocation and the
    /// phase intern table — the per-iteration reset that makes the
    /// recorder allocation-free in steady state.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.events = 0;
    }

    /// On a grow-on-full ring ([`growable`](Self::growable)), raise the
    /// capacity so a `frame_len`-byte frame fits without evicting. A
    /// single predictable not-taken branch on the hot path for
    /// fixed-capacity rings.
    #[inline]
    fn make_room(&mut self, frame_len: usize) {
        if self.grow && self.len_bytes() + frame_len > self.capacity {
            self.capacity = (self.len_bytes() + frame_len).max(self.capacity.saturating_mul(2));
        }
    }

    /// Evict the oldest frame. Returns `false` if the buffer is empty or
    /// corrupt (frame header unreadable) — corruption is impossible for
    /// frames we wrote, but the decoder discipline is "never panic".
    fn evict_oldest(&mut self) -> bool {
        let mut pos = self.start;
        let Some(len) = get_usize(&self.buf, &mut pos) else {
            return false;
        };
        let end = pos.saturating_add(len);
        if end > self.buf.len() {
            return false;
        }
        self.start = end;
        self.events = self.events.saturating_sub(1);
        self.dropped += 1;
        true
    }

    /// Append the scratch-encoded event as one frame, evicting from the
    /// front if needed.
    fn push_frame(&mut self) {
        // Frame = varint(len) + payload; varint of a u32-ish length is ≤ 5
        // bytes.
        let frame_len = self.scratch.len() + 5;
        self.make_room(frame_len);
        if frame_len > self.capacity {
            // A single event larger than the whole ring: count it dropped.
            self.dropped += 1;
            return;
        }
        while self.len_bytes() + frame_len > self.capacity {
            if !self.evict_oldest() {
                // Unreadable front (cannot happen for self-written frames);
                // drop everything rather than looping.
                self.clear();
                break;
            }
        }
        // Re-base once the dead prefix dominates, so `buf` itself stays
        // bounded by ~2× capacity.
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= self.capacity) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        put_usize(&mut self.buf, self.scratch.len());
        self.buf.extend_from_slice(&self.scratch);
        self.events += 1;
    }

    /// Append one stack-built frame (length header included, `len` live
    /// bytes). The whole fixed-size array is appended and then truncated to
    /// `len`: a constant-size copy compiles to a few inline wide stores,
    /// where a `len`-sized `extend_from_slice` is an out-of-line `memcpy`
    /// call that costs more than the rest of the encode combined.
    fn push_small(&mut self, frame: &[u8; SMALL_MAX], len: usize) {
        debug_assert!(len <= SMALL_MAX);
        self.make_room(SMALL_MAX);
        // Conservative capacity check against the fixed frame size keeps
        // this branch shape constant; `capacity` is clamped to ≥ SMALL_MAX
        // at construction, so a frame always fits. Only micro-capacity
        // rings (tests) evict slightly more eagerly than strictly needed.
        while self.len_bytes() + SMALL_MAX > self.capacity {
            if !self.evict_oldest() {
                self.clear();
                break;
            }
        }
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= self.capacity) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old = self.buf.len();
        self.buf.extend_from_slice(frame);
        self.buf.truncate(old + len);
        self.events += 1;
    }

    /// Intern `phase`, returning its table index. The table is tiny (the
    /// engines use ~10 distinct phase strings), so a linear scan wins over
    /// any hashing.
    fn intern(&mut self, phase: &'static str) -> usize {
        // Engines emit long runs of the same phase (all of a block's allocs,
        // then all its frees), so a one-entry cache short-circuits the scan
        // almost every time.
        if let Some(&p) = self.phases.get(self.last_interned) {
            if std::ptr::eq(p, phase) {
                return self.last_interned;
            }
        }
        // Engines pass the same `&'static str` constants over and over, so
        // a pointer-identity scan hits nearly always; the content scan only
        // runs for a genuinely new pointer (e.g. equal literals duplicated
        // across codegen units).
        let i = self
            .phases
            .iter()
            .position(|p| std::ptr::eq(*p, phase))
            .or_else(|| self.phases.iter().position(|p| *p == phase))
            .unwrap_or_else(|| {
                self.phases.push(phase);
                self.phases.len() - 1
            });
        self.last_interned = i;
        i
    }

    /// Encode a variable-size event (`PlanApplied`, `Recovery`) into
    /// `self.scratch` (cleared first). Fixed-shape events never come here —
    /// [`Recorder::record`] packs them straight into a stack frame.
    fn encode_large(&mut self, ev: &ExecEvent) {
        self.scratch.clear();
        // The borrow checker disallows `&mut self.scratch` while calling
        // `self.intern`, so intern first where needed.
        match *ev {
            ExecEvent::PlanApplied { ref plan } => {
                let s = &mut self.scratch;
                s.push(TAG_PLAN_APPLIED);
                put_usize(s, plan.len());
                // LSB-first bitset: bit i of byte i/8 is block i.
                let mut byte = 0u8;
                for i in 0..plan.len() {
                    if plan.is_checkpointed(i) {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        s.push(byte);
                        byte = 0;
                    }
                }
                if plan.len() % 8 != 0 {
                    s.push(byte);
                }
            }
            ExecEvent::Recovery(ref rev) => {
                let p = self.intern(rev.phase);
                let s = &mut self.scratch;
                s.push(TAG_RECOVERY);
                s.push(rung_tag(rev.rung));
                put_usize(s, rev.attempt);
                put_usize(s, p);
                put_usize(s, rev.requested);
                put_usize(s, rev.ckpt_before);
                put_usize(s, rev.ckpt_after);
                put_varint(s, rev.shrink_factor.to_bits());
                put_varint(s, rev.time_cost_ns);
                put_usize(s, rev.freed_bytes);
            }
            _ => debug_assert!(false, "fixed-shape event routed to encode_large"),
        }
    }

    /// Decode one event from `payload`. `None` on malformed bytes.
    fn decode_one(&self, payload: &[u8]) -> Option<ExecEvent> {
        let mut pos = 0usize;
        let tag = *payload.get(pos)?;
        pos += 1;
        let phase_at = |idx: usize| self.phases.get(idx).copied();
        let ev = match tag {
            TAG_ALLOC => {
                let id = AllocId::from_raw(get_varint(payload, &mut pos)?);
                let offset = get_usize(payload, &mut pos)?;
                let size = get_usize(payload, &mut pos)?;
                let requested = get_usize(payload, &mut pos)?;
                let phase = phase_at(get_usize(payload, &mut pos)?)?;
                ExecEvent::Alloc {
                    id,
                    offset,
                    size,
                    requested,
                    phase,
                }
            }
            TAG_FREE => ExecEvent::Free {
                id: AllocId::from_raw(get_varint(payload, &mut pos)?),
                offset: get_usize(payload, &mut pos)?,
                size: get_usize(payload, &mut pos)?,
            },
            TAG_OOM => ExecEvent::Oom {
                requested: get_usize(payload, &mut pos)?,
                free_bytes: get_usize(payload, &mut pos)?,
                largest_free: get_usize(payload, &mut pos)?,
                phase: phase_at(get_usize(payload, &mut pos)?)?,
            },
            TAG_INJECTED_OOM => ExecEvent::InjectedOom {
                requested: get_usize(payload, &mut pos)?,
                phase: phase_at(get_usize(payload, &mut pos)?)?,
            },
            TAG_COMPACT => ExecEvent::Compact {
                moved: get_usize(payload, &mut pos)?,
            },
            TAG_RESET => ExecEvent::Reset,
            TAG_COMPUTE => ExecEvent::Compute {
                ns: get_varint(payload, &mut pos)?,
            },
            TAG_RECOMPUTE => ExecEvent::Recompute {
                ns: get_varint(payload, &mut pos)?,
            },
            TAG_SWAP => ExecEvent::Swap {
                ns: get_varint(payload, &mut pos)?,
            },
            TAG_CLOCK_CHARGE => {
                let ch = *payload.get(pos)?;
                pos += 1;
                ExecEvent::ClockCharge {
                    channel: channel_from_tag(ch)?,
                    ns: get_varint(payload, &mut pos)?,
                }
            }
            TAG_PLAN_APPLIED => {
                let len = get_usize(payload, &mut pos)?;
                let bytes = len.div_ceil(8);
                let bits = payload.get(pos..pos + bytes)?;
                let mut plan = CheckpointPlan::none(len);
                for i in 0..len {
                    if bits[i / 8] & (1 << (i % 8)) != 0 {
                        plan.set(i, true);
                    }
                }
                ExecEvent::PlanApplied { plan }
            }
            TAG_RECOVERY => {
                let rung = rung_from_tag(*payload.get(pos)?)?;
                pos += 1;
                ExecEvent::Recovery(RecoveryEvent {
                    rung,
                    attempt: get_usize(payload, &mut pos)?,
                    phase: phase_at(get_usize(payload, &mut pos)?)?,
                    requested: get_usize(payload, &mut pos)?,
                    ckpt_before: get_usize(payload, &mut pos)?,
                    ckpt_after: get_usize(payload, &mut pos)?,
                    shrink_factor: f64::from_bits(get_varint(payload, &mut pos)?),
                    time_cost_ns: get_varint(payload, &mut pos)?,
                    freed_bytes: get_usize(payload, &mut pos)?,
                })
            }
            TAG_BOUNDARY => ExecEvent::Boundary {
                phase: phase_at(get_usize(payload, &mut pos)?)?,
                index: get_opt_usize(payload, &mut pos)?,
                live_hint: get_opt_usize(payload, &mut pos)?,
            },
            _ => return None,
        };
        Some(ev)
    }

    /// Decode the live region back into the event vector an `EventLog`
    /// would have recorded. Stops cleanly at the first malformed frame
    /// (impossible for frames this recorder wrote) rather than panicking.
    #[must_use]
    pub fn decode(&self) -> Vec<ExecEvent> {
        let mut out = Vec::with_capacity(self.events);
        let mut pos = self.start;
        while pos < self.buf.len() {
            let Some(len) = get_usize(&self.buf, &mut pos) else {
                break;
            };
            let Some(payload) = self.buf.get(pos..pos + len) else {
                break;
            };
            pos += len;
            let Some(ev) = self.decode_one(payload) else {
                break;
            };
            out.push(ev);
        }
        out
    }

    /// Decode and reset in one step — the per-iteration drain used by the
    /// recorded engine paths.
    pub fn take_decoded(&mut self) -> Vec<ExecEvent> {
        let out = self.decode();
        self.clear();
        out
    }
}

impl Recorder for RingRecorder {
    // Deliberately out-of-line: the engines call `record` from dozens of
    // monomorphized sites, and inlining this match everywhere bloats their
    // hot loops (icache pressure) far beyond the ~ns a call costs.
    #[inline(never)]
    fn record(&mut self, ev: &ExecEvent) {
        // Fixed-shape events (every tag except `PlanApplied` / `Recovery`)
        // are packed into a stack frame and land in the ring with a single
        // copy. `arr[0]` is the frame length header: every fixed-shape
        // payload is < 128 bytes, so its varint is exactly one byte and the
        // wire format is byte-identical to the heap path.
        let mut arr = [0u8; SMALL_MAX];
        let mut pos = 1usize;
        match *ev {
            ExecEvent::Alloc {
                id,
                offset,
                size,
                requested,
                phase,
            } => {
                let p = self.intern(phase);
                arr_byte(&mut arr, &mut pos, TAG_ALLOC);
                arr_varint(&mut arr, &mut pos, id.raw());
                arr_usize(&mut arr, &mut pos, offset);
                arr_usize(&mut arr, &mut pos, size);
                arr_usize(&mut arr, &mut pos, requested);
                arr_usize(&mut arr, &mut pos, p);
            }
            ExecEvent::Free { id, offset, size } => {
                arr_byte(&mut arr, &mut pos, TAG_FREE);
                arr_varint(&mut arr, &mut pos, id.raw());
                arr_usize(&mut arr, &mut pos, offset);
                arr_usize(&mut arr, &mut pos, size);
            }
            ExecEvent::Oom {
                requested,
                free_bytes,
                largest_free,
                phase,
            } => {
                let p = self.intern(phase);
                arr_byte(&mut arr, &mut pos, TAG_OOM);
                arr_usize(&mut arr, &mut pos, requested);
                arr_usize(&mut arr, &mut pos, free_bytes);
                arr_usize(&mut arr, &mut pos, largest_free);
                arr_usize(&mut arr, &mut pos, p);
            }
            ExecEvent::InjectedOom { requested, phase } => {
                let p = self.intern(phase);
                arr_byte(&mut arr, &mut pos, TAG_INJECTED_OOM);
                arr_usize(&mut arr, &mut pos, requested);
                arr_usize(&mut arr, &mut pos, p);
            }
            ExecEvent::Compact { moved } => {
                arr_byte(&mut arr, &mut pos, TAG_COMPACT);
                arr_usize(&mut arr, &mut pos, moved);
            }
            ExecEvent::Reset => arr_byte(&mut arr, &mut pos, TAG_RESET),
            ExecEvent::Compute { ns } => {
                arr_byte(&mut arr, &mut pos, TAG_COMPUTE);
                arr_varint(&mut arr, &mut pos, ns);
            }
            ExecEvent::Recompute { ns } => {
                arr_byte(&mut arr, &mut pos, TAG_RECOMPUTE);
                arr_varint(&mut arr, &mut pos, ns);
            }
            ExecEvent::Swap { ns } => {
                arr_byte(&mut arr, &mut pos, TAG_SWAP);
                arr_varint(&mut arr, &mut pos, ns);
            }
            ExecEvent::ClockCharge { channel, ns } => {
                arr_byte(&mut arr, &mut pos, TAG_CLOCK_CHARGE);
                arr_byte(&mut arr, &mut pos, channel_tag(channel));
                arr_varint(&mut arr, &mut pos, ns);
            }
            ExecEvent::Boundary {
                phase,
                index,
                live_hint,
            } => {
                let p = self.intern(phase);
                arr_byte(&mut arr, &mut pos, TAG_BOUNDARY);
                arr_usize(&mut arr, &mut pos, p);
                arr_opt_usize(&mut arr, &mut pos, index);
                arr_opt_usize(&mut arr, &mut pos, live_hint);
            }
            ExecEvent::PlanApplied { .. } | ExecEvent::Recovery(_) => {
                self.encode_large(ev);
                self.push_frame();
                return;
            }
        }
        debug_assert!(pos - 1 < 0x80, "fixed-shape payload exceeds 1-byte header");
        arr[0] = (pos - 1) as u8;
        self.push_small(&arr, pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use crate::Tee;

    fn sample_events() -> Vec<ExecEvent> {
        let mut plan = CheckpointPlan::none(11);
        plan.set(2, true);
        plan.set(7, true);
        plan.set(10, true);
        vec![
            ExecEvent::Alloc {
                id: AllocId::from_raw(42),
                offset: 512,
                size: 1024,
                requested: 1000,
                phase: "forward",
            },
            ExecEvent::Free {
                id: AllocId::from_raw(42),
                offset: 512,
                size: 1024,
            },
            ExecEvent::Oom {
                requested: 1 << 30,
                free_bytes: 12_345,
                largest_free: 512,
                phase: "backward",
            },
            ExecEvent::InjectedOom {
                requested: 777,
                phase: "recompute",
            },
            ExecEvent::Compact { moved: 4096 },
            ExecEvent::Reset,
            ExecEvent::Compute { ns: u64::MAX },
            ExecEvent::Recompute { ns: 0 },
            ExecEvent::Swap { ns: 1 },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Planning,
                ns: 5,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Bookkeeping,
                ns: 6,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Allocator,
                ns: 7,
            },
            ExecEvent::ClockCharge {
                channel: ClockChannel::Recovery,
                ns: 8,
            },
            ExecEvent::PlanApplied { plan },
            ExecEvent::Recovery(RecoveryEvent {
                rung: RecoveryRung::Restart,
                attempt: 2,
                phase: "input",
                requested: usize::MAX,
                ckpt_before: 3,
                ckpt_after: 9,
                shrink_factor: 0.875,
                time_cost_ns: 123_456_789,
                freed_bytes: 0,
            }),
            ExecEvent::Boundary {
                phase: "init",
                index: None,
                live_hint: None,
            },
            ExecEvent::Boundary {
                phase: "end-of-forward",
                index: Some(usize::MAX),
                live_hint: Some(0),
            },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        let events = sample_events();
        let mut ring = RingRecorder::new(1 << 16);
        for ev in &events {
            ring.record(ev);
        }
        assert_eq!(ring.len_events(), events.len());
        assert_eq!(ring.dropped_events(), 0);
        let decoded = ring.decode();
        assert_eq!(decoded, events);
        // Phase pointers round-trip exactly (intern table, not copies).
        for (a, b) in events.iter().zip(&decoded) {
            if let (ExecEvent::Alloc { phase: pa, .. }, ExecEvent::Alloc { phase: pb, .. }) = (a, b)
            {
                assert!(std::ptr::eq(*pa, *pb));
            }
        }
    }

    #[test]
    fn clear_keeps_the_allocation_and_intern_table() {
        let mut ring = RingRecorder::new(4096);
        for ev in sample_events() {
            ring.record(&ev);
        }
        let cap_before = ring.buf.capacity();
        let interned = ring.phases.len();
        ring.clear();
        assert_eq!(ring.len_events(), 0);
        assert!(ring.is_empty());
        assert_eq!(ring.buf.capacity(), cap_before);
        assert_eq!(ring.phases.len(), interned);
        // Second iteration re-uses the table and still round-trips.
        let events = sample_events();
        for ev in &events {
            ring.record(ev);
        }
        assert_eq!(ring.decode(), events);
        assert_eq!(ring.phases.len(), interned);
    }

    #[test]
    fn overflow_evicts_oldest_events_and_counts_them() {
        let mut ring = RingRecorder::new(64);
        for i in 0..100u64 {
            ring.record(&ExecEvent::Compute { ns: i });
        }
        assert!(ring.dropped_events() > 0);
        assert!(ring.len_bytes() <= ring.capacity_bytes());
        let decoded = ring.decode();
        assert_eq!(decoded.len(), ring.len_events());
        // The survivors are the newest suffix, still in order.
        let tail: Vec<u64> = decoded
            .iter()
            .map(|e| match e {
                ExecEvent::Compute { ns } => *ns,
                _ => unreachable!(),
            })
            .collect();
        let expect: Vec<u64> = (100 - tail.len() as u64..100).collect();
        assert_eq!(tail, expect);
    }

    #[test]
    fn growable_ring_never_drops() {
        // Start absurdly small: a fixed ring would evict almost everything,
        // a growable one must keep the complete stream.
        let mut ring = RingRecorder::new(64).growable();
        let mut events = Vec::new();
        for i in 0..500u64 {
            let ev = ExecEvent::Alloc {
                id: AllocId::from_raw(i),
                offset: (i as usize) << 20,
                size: 1 << 20,
                requested: 1 << 20,
                phase: "forward",
            };
            ring.record(&ev);
            events.push(ev);
        }
        assert_eq!(ring.dropped_events(), 0);
        assert_eq!(ring.len_events(), events.len());
        assert_eq!(ring.decode(), events);
        // clear() keeps the grown capacity: the next iteration records the
        // same volume without growing again.
        let cap = ring.capacity_bytes();
        ring.clear();
        for ev in &events {
            ring.record(ev);
        }
        assert_eq!(ring.capacity_bytes(), cap);
        assert_eq!(ring.decode(), events);
    }

    #[test]
    fn tee_into_ring_matches_event_log() {
        let events = sample_events();
        let mut ring = RingRecorder::new(1 << 16);
        let mut log = EventLog::new();
        {
            let mut tee = Tee(&mut ring, &mut log);
            for ev in &events {
                tee.record(ev);
            }
        }
        assert_eq!(ring.decode(), log.events);
    }

    #[test]
    fn take_decoded_drains_for_the_next_iteration() {
        let mut ring = RingRecorder::for_blocks(8);
        ring.record(&ExecEvent::Reset);
        let first = ring.take_decoded();
        assert_eq!(first, vec![ExecEvent::Reset]);
        assert!(ring.is_empty());
        assert!(ring.decode().is_empty());
    }

    #[test]
    fn varint_round_trips_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        // Truncated input decodes to None, never panics.
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80, 0x80], &mut pos), None);
    }

    #[test]
    fn packed_encoding_is_compact() {
        // The headline claim: a typical event packs to a small fraction of
        // `size_of::<ExecEvent>()` (which embeds a CheckpointPlan Vec).
        let mut ring = RingRecorder::new(1 << 16);
        ring.record(&ExecEvent::Alloc {
            id: AllocId::from_raw(7),
            offset: 4096,
            size: 512,
            requested: 300,
            phase: "forward",
        });
        assert!(ring.len_bytes() <= 12);
        assert!(ring.len_bytes() < std::mem::size_of::<ExecEvent>());
    }
}
