//! The shared engine core: arena + virtual clock + time accounting behind
//! one event-emitting facade.
//!
//! [`EngineCore`] owns everything the execution engines have in common — the
//! memory arena, the [`TimeBreakdown`] channels, a [`VirtualClock`] (DTR's
//! h-DTR recency score reads it), the chaos fault hookup, and the
//! [`Recorder`] every action is narrated to. Engines differ only in *when*
//! they allocate, free and charge — the materialization policy — so with the
//! core factored out each engine reduces to its timeline plus a
//! [`MaterializationPolicy`](crate::MaterializationPolicy) impl.
//!
//! Every mutation goes through a method that emits the matching
//! [`ExecEvent`], so the stream a recorder sees is complete: projecting it
//! with [`ExecEvent::to_trace_event`] reproduces exactly the trace the arena
//! itself would have logged with tracing enabled.

use crate::event::{ClockChannel, ExecEvent, Recorder};
use crate::report::{IterationReport, OomReport, TimeBreakdown};
use mimose_chaos::IterationFaults;
use mimose_models::ModelInput;
use mimose_planner::RecoveryEvent;
use mimose_simgpu::{AllocId, AllocPolicy, Arena, DeviceProfile, OomError, VirtualClock};

/// The per-iteration execution substrate shared by every engine.
pub struct EngineCore<'a> {
    /// The device-memory arena. Engines may inspect it freely (free bytes,
    /// fragmentation, sizes); all *mutations* must go through the core so
    /// the event stream stays complete.
    pub arena: Arena,
    /// Device cost model.
    pub dev: &'a DeviceProfile,
    /// Accumulated time channels.
    pub time: TimeBreakdown,
    /// Virtual clock, advanced by every charge (DTR recency reads it).
    pub clock: VirtualClock,
    /// Recompute-latency spike factor from the chaos layer; 1.0 leaves
    /// recompute charges bit-exact.
    pub recompute_factor: f64,
    rec: &'a mut dyn Recorder,
}

/// Everything [`EngineCore::finish`] needs beyond what the core tracked
/// itself to assemble an [`IterationReport`].
pub struct ReportMeta {
    /// Iteration number.
    pub iter: usize,
    /// The collated input.
    pub input: ModelInput,
    /// The paper's scalar input size.
    pub input_size: usize,
    /// Blocks/tensors checkpointed or evicted this iteration.
    pub dropped_units: usize,
    /// Whether this was a shuttle (collection) iteration.
    pub shuttle: bool,
    /// Terminal OOM, if the iteration could not complete.
    pub oom: Option<OomReport>,
    /// Recovery-ladder actions taken, in chronological order.
    pub recovery: Vec<RecoveryEvent>,
}

impl<'a> EngineCore<'a> {
    /// Core over a fresh first-fit arena of `capacity` bytes.
    pub fn new(capacity: usize, dev: &'a DeviceProfile, rec: &'a mut dyn Recorder) -> Self {
        Self::with_policy(capacity, AllocPolicy::FirstFit, dev, rec)
    }

    /// Core over a fresh arena with an explicit fit policy.
    pub fn with_policy(
        capacity: usize,
        policy: AllocPolicy,
        dev: &'a DeviceProfile,
        rec: &'a mut dyn Recorder,
    ) -> Self {
        EngineCore {
            arena: Arena::with_policy(capacity, policy),
            dev,
            time: TimeBreakdown::default(),
            clock: VirtualClock::new(),
            recompute_factor: 1.0,
            rec,
        }
    }

    /// Apply an iteration's fault vector: arm spurious allocation failures
    /// on the arena and pick up the recompute spike factor. This is the
    /// single seam where the chaos layer reaches the execution substrate.
    pub fn arm_faults(&mut self, faults: Option<&IterationFaults>) {
        if let Some(f) = faults {
            if !f.fail_allocs.is_empty() {
                self.arena.set_spurious_failures(&f.fail_allocs);
            }
            self.recompute_factor = f.recompute_factor;
        }
    }

    /// Emit an event to the recorder. Engines use this for events the core
    /// does not originate itself (boundaries, plan changes, recovery rungs).
    #[inline]
    pub fn emit(&mut self, ev: &ExecEvent) {
        self.rec.record(ev);
    }

    /// Current virtual time in ns.
    #[inline]
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now().0
    }

    /// Allocate `bytes`, emitting `Alloc` on success and `Oom` /
    /// `InjectedOom` on failure. The error is returned untouched — relief
    /// (compaction, demotion, eviction) is the policy's job, via
    /// [`policy_alloc`](crate::policy_alloc).
    pub fn try_alloc(&mut self, bytes: usize, phase: &'static str) -> Result<AllocId, OomError> {
        let injected_before = self.arena.stats().injected_ooms;
        match self.arena.alloc(bytes) {
            Ok(id) => {
                if let Some((offset, size)) = self.arena.range_of(id) {
                    self.rec.record(&ExecEvent::Alloc {
                        id,
                        offset,
                        size,
                        requested: bytes,
                        phase,
                    });
                }
                Ok(id)
            }
            Err(e) => {
                if self.arena.stats().injected_ooms > injected_before {
                    self.rec.record(&ExecEvent::InjectedOom {
                        requested: e.requested,
                        phase,
                    });
                } else {
                    self.rec.record(&ExecEvent::Oom {
                        requested: e.requested,
                        free_bytes: e.free_bytes,
                        largest_free: e.largest_free,
                        phase,
                    });
                }
                Err(e)
            }
        }
    }

    /// Free a live allocation, emitting `Free`.
    ///
    /// # Panics
    /// Panics if `id` is not live (the arena's own contract): that is a
    /// simulator bug, not a recoverable condition.
    pub fn free(&mut self, id: AllocId) {
        let range = self.arena.range_of(id);
        self.arena.free(id);
        if let Some((offset, size)) = range {
            self.rec.record(&ExecEvent::Free { id, offset, size });
        }
    }

    /// Compact the arena (recovery rung 1), emitting `Compact`. Returns the
    /// bytes of live data that changed address — the copy cost the caller
    /// should charge via [`Self::charge_recovery`].
    pub fn compact(&mut self) -> usize {
        let moved = self.arena.compact();
        self.rec.record(&ExecEvent::Compact { moved });
        moved
    }

    /// Charge useful compute time.
    pub fn charge_compute(&mut self, ns: u64) {
        self.time.compute_ns += ns;
        self.clock.advance(ns);
        self.rec.record(&ExecEvent::Compute { ns });
    }

    /// Charge recomputation time from a cost-model figure, applying the
    /// chaos spike factor. Returns the nanoseconds actually charged.
    pub fn charge_recompute(&mut self, ns: f64) -> u64 {
        let charged = (ns * self.recompute_factor) as u64;
        self.time.recompute_ns += charged;
        self.clock.advance(charged);
        self.rec.record(&ExecEvent::Recompute { ns: charged });
        charged
    }

    /// Charge non-overlapped swap transfer time.
    pub fn charge_swap(&mut self, ns: u64) {
        self.time.swap_ns += ns;
        self.clock.advance(ns);
        self.rec.record(&ExecEvent::Swap { ns });
    }

    /// Charge plan-generation / eviction-search time.
    pub fn charge_planning(&mut self, ns: u64) {
        self.time.planning_ns += ns;
        self.clock.advance(ns);
        self.rec.record(&ExecEvent::ClockCharge {
            channel: ClockChannel::Planning,
            ns,
        });
    }

    /// Charge per-tensor metadata-maintenance time.
    pub fn charge_bookkeeping(&mut self, ns: u64) {
        self.time.bookkeeping_ns += ns;
        self.clock.advance(ns);
        self.rec.record(&ExecEvent::ClockCharge {
            channel: ClockChannel::Bookkeeping,
            ns,
        });
    }

    /// Charge OOM-recovery overhead (compaction copies, aborted attempts).
    pub fn charge_recovery(&mut self, ns: u64) {
        self.time.recovery_ns += ns;
        self.clock.advance(ns);
        self.rec.record(&ExecEvent::ClockCharge {
            channel: ClockChannel::Recovery,
            ns,
        });
    }

    /// Close the iteration: charge the allocator-call overhead for every
    /// arena operation performed, and assemble the report from the arena's
    /// watermarks. Returns the arena alongside so traced callers can read
    /// its final statistics.
    #[must_use]
    pub fn finish(mut self, meta: ReportMeta) -> (IterationReport, Arena) {
        let stats = self.arena.stats();
        let alloc_ns = ((stats.allocs + stats.frees) as f64 * self.dev.alloc_ns) as u64;
        self.time.allocator_ns += alloc_ns;
        self.clock.advance(alloc_ns);
        self.rec.record(&ExecEvent::ClockCharge {
            channel: ClockChannel::Allocator,
            ns: alloc_ns,
        });
        let report = IterationReport {
            iter: meta.iter,
            input: meta.input,
            input_size: meta.input_size,
            time: self.time,
            peak_bytes: stats.peak_used,
            peak_extent: stats.peak_extent.max(stats.peak_footprint),
            frag_bytes: stats.peak_frag,
            dropped_units: meta.dropped_units,
            shuttle: meta.shuttle,
            oom: meta.oom,
            recovery: meta.recovery,
        };
        (report, self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use mimose_simgpu::TraceEvent;

    #[test]
    fn core_events_mirror_an_arena_trace_exactly() {
        let dev = DeviceProfile::v100();
        let mut log = EventLog::new();
        let mut core = EngineCore::new(1 << 20, &dev, &mut log);
        let a = core.try_alloc(1000, "forward").expect("fits");
        let b = core.try_alloc(2000, "forward").expect("fits");
        core.free(a);
        let moved = core.compact();
        assert_eq!(moved, 2048, "b slid down over a's hole");
        core.free(b);
        let err = core.try_alloc(2 << 20, "forward").expect_err("too big");
        assert_eq!(err.requested, 2 << 20);
        let (_, arena) = core.finish(ReportMeta {
            iter: 0,
            input: ModelInput::tokens(1, 1),
            input_size: 1,
            dropped_units: 0,
            shuttle: false,
            oom: None,
            recovery: Vec::new(),
        });

        // An arena with native tracing replaying the same ops must produce
        // the projection of the event stream, byte for byte.
        let mut shadow = Arena::new(1 << 20);
        shadow.set_tracing(true);
        let sa = shadow.alloc(1000).expect("fits");
        let sb = shadow.alloc(2000).expect("fits");
        shadow.free(sa);
        shadow.compact();
        shadow.free(sb);
        let _ = shadow.alloc(2 << 20).expect_err("too big");
        assert_eq!(log.to_arena_trace(), shadow.take_trace());
        assert_eq!(arena.stats().allocs, shadow.stats().allocs);
        assert_eq!(arena.stats().peak_used, shadow.stats().peak_used);
    }

    #[test]
    fn charges_land_in_their_channels_and_advance_the_clock() {
        let dev = DeviceProfile::v100();
        let mut log = EventLog::new();
        let mut core = EngineCore::new(1 << 20, &dev, &mut log);
        core.charge_compute(100);
        core.charge_recompute(50.9); // factor 1.0: truncates like the engines
        core.charge_swap(7);
        core.charge_planning(3);
        core.charge_bookkeeping(2);
        core.charge_recovery(1);
        assert_eq!(core.time.compute_ns, 100);
        assert_eq!(core.time.recompute_ns, 50);
        assert_eq!(core.time.swap_ns, 7);
        assert_eq!(core.time.planning_ns, 3);
        assert_eq!(core.time.bookkeeping_ns, 2);
        assert_eq!(core.time.recovery_ns, 1);
        assert_eq!(core.now_ns(), 163);
        // The spike factor scales recompute charges only.
        core.recompute_factor = 2.0;
        assert_eq!(core.charge_recompute(50.9), 101);
    }

    #[test]
    fn injected_failures_emit_their_own_event() {
        let dev = DeviceProfile::v100();
        let mut log = EventLog::new();
        let mut core = EngineCore::new(1 << 20, &dev, &mut log);
        let faults = IterationFaults {
            fail_allocs: vec![1],
            ..IterationFaults::identity()
        };
        core.arm_faults(Some(&faults));
        let _ = core.try_alloc(1000, "forward").expect_err("injected");
        let _ = core.try_alloc(1000, "forward").expect("retry succeeds");
        assert!(matches!(
            log.events[0],
            ExecEvent::InjectedOom {
                requested: 1024,
                ..
            }
        ));
        assert!(matches!(log.events[1], ExecEvent::Alloc { .. }));
        assert_eq!(
            log.to_arena_trace()[0],
            TraceEvent::InjectedOom { requested: 1024 }
        );
    }
}
