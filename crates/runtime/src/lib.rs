//! # mimose-runtime
//!
//! The event-sourced execution runtime core shared by every engine.
//!
//! Layering (see `docs/ARCHITECTURE.md` for the full picture):
//!
//! ```text
//!   engines (mimose-exec)      block timeline      DTR timeline
//!        policies              inline rungs        h-DTR eviction
//!   ───────────────────────  MaterializationPolicy + policy_alloc
//!        runtime core          EngineCore: arena + clock + charges
//!        event stream          ExecEvent  →  Recorder (Null/Log/Tee)
//!   ───────────────────────
//!        consumers             report fold · shadow check · audit replay
//! ```
//!
//! [`EngineCore`] owns the arena, the virtual clock and the time channels;
//! every mutation emits a typed [`ExecEvent`] to a [`Recorder`], so one
//! append-only stream is the single observability substrate: iteration
//! reports fold from it ([`fold_events`]), shadow checkers cross-validate
//! it live, and `mimose-audit` replays it through an independent shadow
//! allocator. [`MaterializationPolicy`] is the seam where the engines
//! differ — how pressure is relieved at an allocation site.

#![warn(missing_docs)]

mod engine;
mod event;
mod fold;
mod live;
mod policy;
mod report;
mod ring;

pub use engine::{EngineCore, ReportMeta};
pub use event::{ClockChannel, EventLog, ExecEvent, NullRecorder, Recorder, Tee};
pub use fold::{fold_events, EventFold};
pub use live::LiveBlock;
pub use policy::{policy_alloc, AllocFail, AllocSite, MaterializationPolicy, NoRelief};
pub use report::{IterationReport, OomReport, RunSummary, TimeBreakdown};
pub use ring::RingRecorder;

/// The single alignment rule of the whole system, re-exported from the
/// arena: round up to the 512 B granule, minimum one granule, saturating
/// near `usize::MAX`.
pub use mimose_simgpu::align_up;

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_simgpu::ARENA_ALIGN;

    #[test]
    fn align_up_edge_sizes() {
        // Zero-byte requests still occupy one granule.
        assert_eq!(align_up(0), ARENA_ALIGN);
        // Exact multiples are fixed points.
        assert_eq!(align_up(ARENA_ALIGN), ARENA_ALIGN);
        assert_eq!(align_up(7 * ARENA_ALIGN), 7 * ARENA_ALIGN);
        // One past a multiple rounds to the next granule.
        assert_eq!(align_up(ARENA_ALIGN + 1), 2 * ARENA_ALIGN);
        assert_eq!(align_up(1), ARENA_ALIGN);
        // Near usize::MAX the addition saturates instead of overflowing and
        // the result is still granule-aligned.
        let top = align_up(usize::MAX);
        assert_eq!(top % ARENA_ALIGN, 0);
        assert_eq!(top, usize::MAX - (ARENA_ALIGN - 1));
        assert_eq!(align_up(top), top);
    }
}
