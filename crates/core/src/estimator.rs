//! The lightning memory estimator (§IV-C): per-block polynomial models of
//! activation memory, output size and forward time as functions of the
//! iteration input size, trained from shuttle-collector samples.

use mimose_estimator::{FitError, PolynomialRegressor, Regressor};
use mimose_models::{BlockProfile, ModelProfile};
use mimose_planner::BlockObservation;

/// One shuttle-collector sample: the input size and per-block measurements.
#[derive(Debug, Clone)]
pub struct ShuttleSample {
    /// The iteration's scalar input size.
    pub input_size: usize,
    /// Input-tensor bytes.
    pub input_bytes: usize,
    /// Per-block measurements, indexed by global block index.
    pub blocks: Vec<BlockObservation>,
}

/// Per-block fitted estimators.
#[derive(Debug, Clone)]
pub struct MemoryEstimator {
    act: Vec<PolynomialRegressor>,
    out: Vec<PolynomialRegressor>,
    input_bytes: PolynomialRegressor,
    fwd_ns: Vec<PolynomialRegressor>,
    /// Input-size range seen during collection.
    pub x_min: f64,
    /// Input-size range seen during collection.
    pub x_max: f64,
}

impl MemoryEstimator {
    /// Fit per-block polynomials of the given order from samples.
    ///
    /// Requires at least `order + 1` *distinct* input sizes; callers keep
    /// shuttling until that holds (§IV-B: 10–30 iterations suffice).
    ///
    /// # Panics
    ///
    /// Panics only on an internal invariant violation: too few distinct
    /// samples are reported as a [`FitError`], not a panic.
    pub fn fit(samples: &[ShuttleSample], order: usize) -> Result<Self, FitError> {
        let first = samples.first().ok_or(FitError::TooFewSamples {
            got: 0,
            need: order + 1,
        })?;
        let n_blocks = first.blocks.len();
        let xs: Vec<f64> = samples.iter().map(|s| s.input_size as f64).collect();
        let mut distinct: Vec<f64> = xs.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        if distinct.len() < order + 1 {
            return Err(FitError::TooFewSamples {
                got: distinct.len(),
                need: order + 1,
            });
        }
        let fit_one = |ys: Vec<f64>| -> Result<PolynomialRegressor, FitError> {
            let mut p = PolynomialRegressor::new(order);
            p.fit(&xs, &ys)?;
            Ok(p)
        };
        let mut act = Vec::with_capacity(n_blocks);
        let mut out = Vec::with_capacity(n_blocks);
        let mut fwd = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            act.push(fit_one(
                samples
                    .iter()
                    .map(|s| s.blocks[b].act_bytes as f64)
                    .collect(),
            )?);
            out.push(fit_one(
                samples
                    .iter()
                    .map(|s| s.blocks[b].out_bytes as f64)
                    .collect(),
            )?);
            fwd.push(fit_one(
                samples.iter().map(|s| s.blocks[b].fwd_ns as f64).collect(),
            )?);
        }
        let input_bytes = fit_one(samples.iter().map(|s| s.input_bytes as f64).collect())?;
        Ok(MemoryEstimator {
            act,
            out,
            input_bytes,
            fwd_ns: fwd,
            x_min: distinct[0],
            x_max: *distinct.last().expect("nonempty"),
        })
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.act.len()
    }

    /// Predicted activation bytes of block `b` at input size `x`.
    #[must_use]
    pub fn act_bytes(&self, b: usize, x: f64) -> f64 {
        self.act[b].predict(x).max(0.0)
    }

    /// Predicted output bytes of block `b` at input size `x`.
    #[must_use]
    pub fn out_bytes(&self, b: usize, x: f64) -> f64 {
        self.out[b].predict(x).max(0.0)
    }

    /// Predicted forward time (ns) of block `b` at input size `x`.
    #[must_use]
    pub fn fwd_ns(&self, b: usize, x: f64) -> f64 {
        self.fwd_ns[b].predict(x).max(0.0)
    }

    /// Build an *estimated* model profile at input size `x`, shaped like the
    /// ground-truth [`ModelProfile`] so the shared analytic peak model (and
    /// Algorithm 1) can run on predictions. `const_bytes` is structural
    /// information (parameters + optimizer states) legitimately available
    /// from the framework without profiling.
    #[must_use]
    pub fn estimated_profile(&self, template: &ModelProfile, x: f64) -> ModelProfile {
        let mut blocks = Vec::with_capacity(self.num_blocks());
        let mut prev_out = self.input_bytes.predict(x).max(0.0) as usize;
        for b in 0..self.num_blocks() {
            let act = self.act_bytes(b, x) as usize;
            let out = self.out_bytes(b, x) as usize;
            blocks.push(BlockProfile {
                name: template.blocks[b].name.clone(),
                stage: template.blocks[b].stage,
                index: b,
                act_bytes: act,
                out_bytes: out,
                in_bytes: prev_out,
                fwd_flops: 0.0,
                bwd_flops: 0.0,
                fwd_bytes_moved: 0,
                tensors: Vec::new(),
            });
            prev_out = out;
        }
        ModelProfile {
            model: template.model.clone(),
            input: template.input,
            input_size: x as usize,
            blocks,
            const_bytes: template.const_bytes,
            param_count: template.param_count,
            input_bytes: self.input_bytes.predict(x).max(0.0) as usize,
        }
    }

    /// Sum of predicted per-block memory at `x` (Algorithm 1's Σ est_mem).
    #[must_use]
    pub fn total_act_bytes(&self, x: f64) -> f64 {
        (0..self.num_blocks())
            .map(|b| self.act_bytes(b, x) + self.out_bytes(b, x))
            .sum()
    }

    /// Input sizes at which some fitted per-block polynomial can attain its
    /// maximum over `[lo, hi]`: the interval endpoints plus every interior
    /// stationary point. For the paper's quadratic estimator this set is
    /// *exact* — a quadratic's extremum over an interval sits at an endpoint
    /// or its vertex — so profiles evaluated at these sizes form a sound
    /// envelope of the whole bucket; higher orders fall back to a dense grid.
    pub fn envelope_sizes(&self, lo: f64, hi: f64) -> Vec<f64> {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut xs = vec![lo, hi];
        let channels = self
            .act
            .iter()
            .chain(self.out.iter())
            .chain(std::iter::once(&self.input_bytes));
        for p in channels {
            let c = p.coefficients();
            match c.len() {
                0..=2 => {} // constant/linear: extrema only at endpoints
                3 => {
                    // Vertex of c0 + c1·z + c2·z² in the scaled variable,
                    // mapped back to real x.
                    if c[2] != 0.0 {
                        let x = -c[1] / (2.0 * c[2]) * p.x_scale();
                        if x > lo && x < hi {
                            xs.push(x);
                        }
                    }
                }
                _ => {
                    // Conservative fallback for higher orders.
                    const GRID: usize = 16;
                    for i in 1..GRID {
                        xs.push(lo + (hi - lo) * i as f64 / GRID as f64);
                    }
                    break;
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        xs
    }

    /// Estimated profiles at every [`envelope_sizes`] point of `[lo, hi]` —
    /// the concrete inputs to `mimose_verify::join_envelope`, whose
    /// block-wise join bounds the estimator's predictions across the whole
    /// bucket.
    ///
    /// [`envelope_sizes`]: MemoryEstimator::envelope_sizes
    #[must_use]
    pub fn envelope_profiles(
        &self,
        template: &ModelProfile,
        lo: f64,
        hi: f64,
    ) -> Vec<ModelProfile> {
        self.envelope_sizes(lo, hi)
            .into_iter()
            .map(|x| self.estimated_profile(template, x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    /// Fabricate shuttle samples from ground-truth profiles (what the
    /// collector would measure on a perfect device).
    pub(crate) fn samples_from_truth(seqs: &[usize]) -> (Vec<ShuttleSample>, ModelProfile) {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let mut samples = Vec::new();
        let mut template = None;
        for &s in seqs {
            let p = m.profile(&ModelInput::tokens(32, s)).unwrap();
            samples.push(ShuttleSample {
                input_size: p.input_size,
                input_bytes: p.input_bytes,
                blocks: p
                    .blocks
                    .iter()
                    .map(|b| BlockObservation {
                        index: b.index,
                        act_bytes: b.act_bytes,
                        out_bytes: b.out_bytes,
                        in_bytes: b.in_bytes,
                        fwd_ns: (b.fwd_flops / 6e3) as u64, // arbitrary scale
                    })
                    .collect(),
            });
            template = Some(p);
        }
        (samples, template.unwrap())
    }

    #[test]
    fn quadratic_fit_predicts_unseen_sizes_accurately() {
        let (samples, _) = samples_from_truth(&[40, 55, 70, 90, 105, 120, 135, 150, 170, 190]);
        let est = MemoryEstimator::fit(&samples, 2).unwrap();
        // Evaluate at an unseen, larger size.
        let m = bert_base(BertHead::Classification { labels: 2 });
        let truth = m.profile(&ModelInput::tokens(32, 260)).unwrap();
        let x = truth.input_size as f64;
        let pred: f64 = (0..est.num_blocks())
            .map(|b| est.act_bytes(b, x) + est.out_bytes(b, x))
            .sum();
        let actual = truth.total_act_bytes() as f64;
        let rel = (pred - actual).abs() / actual;
        // Paper Table V: thousandth-level error.
        assert!(rel < 0.01, "relative error {rel}");
    }

    #[test]
    fn linear_fit_is_visibly_worse() {
        let (samples, _) = samples_from_truth(&[40, 55, 70, 90, 105, 120, 135, 150, 170, 190]);
        let quad = MemoryEstimator::fit(&samples, 2).unwrap();
        let lin = MemoryEstimator::fit(&samples, 1).unwrap();
        let m = bert_base(BertHead::Classification { labels: 2 });
        let truth = m.profile(&ModelInput::tokens(32, 300)).unwrap();
        let x = truth.input_size as f64;
        let err = |e: &MemoryEstimator| {
            let pred: f64 = (0..e.num_blocks())
                .map(|b| e.act_bytes(b, x) + e.out_bytes(b, x))
                .sum();
            (pred - truth.total_act_bytes() as f64).abs() / truth.total_act_bytes() as f64
        };
        assert!(
            err(&lin) > 3.0 * err(&quad),
            "lin {} quad {}",
            err(&lin),
            err(&quad)
        );
    }

    #[test]
    fn too_few_distinct_sizes_rejected() {
        let (samples, _) = samples_from_truth(&[64, 64, 64]);
        assert!(matches!(
            MemoryEstimator::fit(&samples, 2),
            Err(FitError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn envelope_join_bounds_interior_predictions() {
        let (samples, template) = samples_from_truth(&[40, 80, 120, 160, 200]);
        let est = MemoryEstimator::fit(&samples, 2).unwrap();
        let (lo, hi) = (32.0 * 60.0, 32.0 * 180.0);
        let envelope = est.envelope_profiles(&template, lo, hi);
        assert!(envelope.len() >= 2);
        let join = mimose_verify::join_envelope(&envelope).unwrap();
        // Every prediction inside the bucket is dominated block-wise.
        for step in 0..=20 {
            let x = lo + (hi - lo) * step as f64 / 20.0;
            let p = est.estimated_profile(&template, x);
            for (jb, pb) in join.blocks.iter().zip(&p.blocks) {
                assert!(jb.act_bytes >= pb.act_bytes, "x={x} block {}", pb.index);
                assert!(jb.out_bytes >= pb.out_bytes, "x={x} block {}", pb.index);
            }
            assert!(join.input_bytes >= p.input_bytes, "x={x}");
        }
    }

    #[test]
    fn estimated_profile_matches_truth_structure() {
        let (samples, template) = samples_from_truth(&[40, 80, 120, 160, 200]);
        let est = MemoryEstimator::fit(&samples, 2).unwrap();
        let m = bert_base(BertHead::Classification { labels: 2 });
        let truth = m.profile(&ModelInput::tokens(32, 100)).unwrap();
        let ep = est.estimated_profile(&template, truth.input_size as f64);
        assert_eq!(ep.blocks.len(), truth.blocks.len());
        for (e, t) in ep.blocks.iter().zip(&truth.blocks) {
            let rel = (e.act_bytes as f64 - t.act_bytes as f64).abs() / t.act_bytes.max(1) as f64;
            assert!(rel < 0.02, "block {}: rel {}", t.name, rel);
        }
    }
}
