//! Adaptive extensions to the base Mimose policy.
//!
//! Two mechanisms beyond the paper's evaluated configuration, both in the
//! spirit of its discussion sections:
//!
//! * **Adaptive re-collection** (§IV-B: the collector cost is `O(n/N)` when
//!   shuttling only "when meeting new input size"): in responsive execution,
//!   an input far outside the fitted support triggers one more shuttle
//!   iteration and a refit, instead of trusting polynomial extrapolation.
//! * **OOM feedback** (the safety companion to §VI-D's fragmentation
//!   reserve): if a planned iteration still overruns — an estimator
//!   under-prediction — the policy widens its safety margin and invalidates
//!   the plan cache, so the failure cannot repeat.

/// Configuration of the adaptive extensions.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Re-shuttle when the input size exceeds the fitted support by this
    /// factor (or falls below its inverse). 0 disables re-collection.
    pub recollect_beyond: f64,
    /// Extra bytes added to the reserve after each in-budget OOM.
    pub oom_backoff_bytes: usize,
    /// Upper bound on the accumulated backoff.
    pub max_backoff_bytes: usize,
    /// Floor on the multiplicative planning-budget scale accumulated from
    /// executor restart feedback (the recovery ladder's shrunk budgets).
    /// Guards against a pathological fault storm driving plans to
    /// all-checkpoint forever.
    pub min_plan_scale: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            recollect_beyond: 1.25,
            oom_backoff_bytes: 256 << 20,
            max_backoff_bytes: 2 << 30,
            min_plan_scale: 0.5,
        }
    }
}

/// Runtime state of the adaptive extensions.
#[derive(Debug, Clone)]
pub struct AdaptiveState {
    /// Extra reserve accumulated from OOM feedback.
    pub backoff_bytes: usize,
    /// Number of responsive-phase re-collections triggered.
    pub recollections: usize,
    /// Number of OOM-feedback events.
    pub oom_events: usize,
    /// Multiplicative scale on the planning budget, tightened whenever the
    /// executor's recovery ladder had to restart or fall back (its shrunk
    /// budget rescued the iteration, so future plans should assume it).
    pub plan_scale: f64,
    /// Number of budget-shrink feedback events absorbed.
    pub budget_shrinks: usize,
}

impl Default for AdaptiveState {
    fn default() -> Self {
        AdaptiveState {
            backoff_bytes: 0,
            recollections: 0,
            oom_events: 0,
            plan_scale: 1.0,
            budget_shrinks: 0,
        }
    }
}

impl AdaptiveState {
    /// Whether `input_size` lies outside the fitted support
    /// `[x_min, x_max]` by more than the configured factor.
    #[must_use]
    pub fn needs_recollect(
        &self,
        cfg: &AdaptiveConfig,
        input_size: f64,
        x_min: f64,
        x_max: f64,
    ) -> bool {
        if cfg.recollect_beyond <= 1.0 {
            return false;
        }
        input_size > x_max * cfg.recollect_beyond || input_size < x_min / cfg.recollect_beyond
    }

    /// Register an in-budget OOM; returns the new backoff.
    pub fn on_oom(&mut self, cfg: &AdaptiveConfig) -> usize {
        self.oom_events += 1;
        self.backoff_bytes =
            (self.backoff_bytes + cfg.oom_backoff_bytes).min(cfg.max_backoff_bytes);
        self.backoff_bytes
    }

    /// Absorb an executor restart/fallback's budget shrink (`factor` is the
    /// cumulative shrink the ladder needed to complete the iteration);
    /// returns the new plan scale, floored at `cfg.min_plan_scale`.
    pub fn on_budget_shrink(&mut self, cfg: &AdaptiveConfig, factor: f64) -> f64 {
        if factor > 0.0 && factor < 1.0 {
            self.budget_shrinks += 1;
            self.plan_scale = (self.plan_scale * factor).max(cfg.min_plan_scale);
        }
        self.plan_scale
    }

    /// Absorb an iteration's recovery-event chain. If the iteration only
    /// completed via a restart or fallback, the ladder's *cumulative* shrink
    /// (carried by the last such event) is what actually fit — adopt it for
    /// future plans. Returns `true` when the plan scale tightened, i.e. any
    /// cached plans generated under the wider budget are now suspect.
    pub fn absorb_recovery(
        &mut self,
        cfg: &AdaptiveConfig,
        events: &[mimose_planner::RecoveryEvent],
    ) -> bool {
        let escalated = events
            .iter()
            .rev()
            .find(|e| e.rung >= mimose_planner::RecoveryRung::Restart);
        match escalated {
            Some(e) => {
                self.on_budget_shrink(cfg, e.shrink_factor);
                true
            }
            None => false,
        }
    }

    /// Like [`AdaptiveState::absorb_recovery`], but feeding straight from a
    /// recorded executor event stream: the recovery events embedded in it
    /// are exactly what the report's chain would carry.
    pub fn absorb_exec_events(
        &mut self,
        cfg: &AdaptiveConfig,
        events: &[mimose_runtime::ExecEvent],
    ) -> bool {
        let recovery: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                mimose_runtime::ExecEvent::Recovery(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        self.absorb_recovery(cfg, &recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recollect_only_outside_factor() {
        let cfg = AdaptiveConfig::default();
        let s = AdaptiveState::default();
        assert!(!s.needs_recollect(&cfg, 1_000.0, 500.0, 1_000.0));
        assert!(!s.needs_recollect(&cfg, 1_200.0, 500.0, 1_000.0)); // 1.2x < 1.25x
        assert!(s.needs_recollect(&cfg, 1_300.0, 500.0, 1_000.0));
        assert!(s.needs_recollect(&cfg, 300.0, 500.0, 1_000.0));
    }

    #[test]
    fn disabled_when_factor_not_above_one() {
        let cfg = AdaptiveConfig {
            recollect_beyond: 0.0,
            ..Default::default()
        };
        let s = AdaptiveState::default();
        assert!(!s.needs_recollect(&cfg, 1e12, 1.0, 2.0));
    }

    #[test]
    fn oom_backoff_accumulates_and_caps() {
        let cfg = AdaptiveConfig {
            oom_backoff_bytes: 1 << 30,
            max_backoff_bytes: 2 << 30,
            ..Default::default()
        };
        let mut s = AdaptiveState::default();
        assert_eq!(s.on_oom(&cfg), 1 << 30);
        assert_eq!(s.on_oom(&cfg), 2 << 30);
        assert_eq!(s.on_oom(&cfg), 2 << 30, "capped");
        assert_eq!(s.oom_events, 3);
    }

    #[test]
    fn budget_shrink_accumulates_and_floors() {
        let cfg = AdaptiveConfig {
            min_plan_scale: 0.5,
            ..Default::default()
        };
        let mut s = AdaptiveState::default();
        assert!((s.plan_scale - 1.0).abs() < 1e-12, "starts at identity");
        assert!((s.on_budget_shrink(&cfg, 0.85) - 0.85).abs() < 1e-12);
        assert!((s.on_budget_shrink(&cfg, 0.85) - 0.7225).abs() < 1e-12);
        // Keeps shrinking but never below the floor.
        for _ in 0..10 {
            s.on_budget_shrink(&cfg, 0.85);
        }
        assert!((s.plan_scale - 0.5).abs() < 1e-12);
        assert_eq!(s.budget_shrinks, 12);
        // Out-of-range factors are ignored.
        s.on_budget_shrink(&cfg, 1.5);
        s.on_budget_shrink(&cfg, 0.0);
        assert_eq!(s.budget_shrinks, 12);
    }

    #[test]
    fn absorbs_escalations_from_chains_and_streams() {
        use mimose_planner::{RecoveryEvent, RecoveryRung};
        use mimose_runtime::ExecEvent;
        let ev = |rung, shrink_factor| RecoveryEvent {
            rung,
            attempt: 0,
            phase: "forward",
            requested: 1 << 20,
            ckpt_before: 0,
            ckpt_after: 3,
            shrink_factor,
            time_cost_ns: 0,
            freed_bytes: 0,
        };
        let cfg = AdaptiveConfig::default();

        // Inline-only chains carry no budget shrink: nothing to absorb.
        let mut s = AdaptiveState::default();
        assert!(!s.absorb_recovery(&cfg, &[ev(RecoveryRung::CoalesceRetry, 1.0)]));
        assert!((s.plan_scale - 1.0).abs() < 1e-12);

        // The *last* escalation's cumulative shrink wins.
        let chain = [
            ev(RecoveryRung::Restart, 0.85),
            ev(RecoveryRung::Restart, 0.7225),
        ];
        assert!(s.absorb_recovery(&cfg, &chain));
        assert!((s.plan_scale - 0.7225).abs() < 1e-12);
        assert_eq!(s.budget_shrinks, 1);

        // Same feedback straight from a recorded event stream.
        let mut t = AdaptiveState::default();
        let stream = [
            ExecEvent::Compute { ns: 10 },
            ExecEvent::Recovery(ev(RecoveryRung::Fallback, 0.85)),
        ];
        assert!(t.absorb_exec_events(&cfg, &stream));
        assert!((t.plan_scale - 0.85).abs() < 1e-12);
    }
}
