//! The responsive memory scheduler (§IV-D, Algorithm 1).
//!
//! Greedy bucket scheduling: layers with similar estimated memory (±10 %)
//! form buckets ordered by forward timestamp; blocks are selected for
//! checkpointing until the estimated excess over the budget is covered,
//! preferring (a) the bucket whose largest activation most tightly covers
//! the remaining excess and (b) the *earliest* block within a bucket —
//! because checkpointing late blocks barely lowers the peak (Fig 9).
//!
//! The paper "reserves a flexible interface for users to experiment with
//! other scheduling algorithms, such as the Knapsack optimization";
//! [`Scheduler`] is that interface and [`KnapsackScheduler`] the alternative.

use mimose_models::ModelProfile;
use mimose_planner::memory_model::peak_bytes;
use mimose_planner::{CheckpointPlan, ResidencyModel};
use std::collections::BTreeMap;

/// The pluggable scheduling interface (§IV-D last paragraph).
pub trait Scheduler: Send + Sync {
    /// Produce a plan for the *estimated* profile under `budget` bytes.
    fn schedule(&self, est: &ModelProfile, budget: usize) -> CheckpointPlan;

    /// Scheduler name (for ablation tables).
    fn name(&self) -> &'static str;
}

/// Algorithm 1: greedy bucket scheduler.
#[derive(Debug, Clone)]
pub struct GreedyBucketScheduler {
    /// Bucket tolerance (paper: 0.10 → layers ≥ 90 % of the head join).
    pub tolerance: f64,
}

impl GreedyBucketScheduler {
    /// Scheduler with the paper's ±10 % tolerance.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `tolerance` is outside `[0, 1)`.
    pub fn new(tolerance: f64) -> Self {
        assert!((0.0..1.0).contains(&tolerance));
        GreedyBucketScheduler { tolerance }
    }
}

/// Bucket state for one scheduling run: the buckets themselves (block
/// indices in forward-timestamp order, consumed front-to-back via a cursor)
/// plus a size-sorted index of every non-exhausted bucket's current head.
///
/// The index keys are `(est_mem[head], bucket_id)`, so both Algorithm 1
/// selections become O(log B) BTreeMap seeks instead of O(B) scans:
/// * "bucket whose head most tightly covers the excess" =
///   `range((excess, 0)..).next()` (ties by lower bucket id, matching the
///   original first-minimum semantics);
/// * "bucket with the globally largest head" = `last_key_value()` (ties by
///   higher bucket id, matching the original last-maximum semantics).
struct BucketQueue {
    buckets: Vec<Vec<usize>>,
    /// Per-bucket cursor: `buckets[bi][heads[bi]]` is the current head.
    heads: Vec<usize>,
    /// `(est_mem of current head, bucket id)` for every non-empty bucket.
    index: BTreeMap<(usize, usize), ()>,
}

impl BucketQueue {
    fn new(est_mem: &[usize], tolerance: f64) -> Self {
        let buckets = build_buckets(est_mem, tolerance);
        let mut index = BTreeMap::new();
        for (bi, b) in buckets.iter().enumerate() {
            if let Some(&head) = b.first() {
                index.insert((est_mem[head], bi), ());
            }
        }
        BucketQueue {
            heads: vec![0; buckets.len()],
            buckets,
            index,
        }
    }

    /// Bucket whose head most tightly covers `excess` bytes, if any.
    fn tightest_cover(&self, excess: usize) -> Option<usize> {
        self.index
            .range((excess, 0)..)
            .next()
            .map(|(&(_, bi), _)| bi)
    }

    /// Bucket with the globally largest head, if any bucket remains.
    fn largest(&self) -> Option<usize> {
        self.index.last_key_value().map(|(&(_, bi), _)| bi)
    }

    /// Pop the earliest-timestamp block of bucket `bi` (its head), updating
    /// the size index.
    fn pop(&mut self, bi: usize, est_mem: &[usize]) -> usize {
        let cursor = self.heads[bi];
        let block = self.buckets[bi][cursor];
        self.index.remove(&(est_mem[block], bi));
        self.heads[bi] = cursor + 1;
        if let Some(&next) = self.buckets[bi].get(cursor + 1) {
            self.index.insert((est_mem[next], bi), ());
        }
        block
    }
}

/// One bucket: block indices sharing similar estimated memory, sorted by
/// forward timestamp (= block index) ascending.
fn build_buckets(est_mem: &[usize], tolerance: f64) -> Vec<Vec<usize>> {
    // Sort blocks by estimated activation size, descending (Algorithm 1 l.3).
    let mut order: Vec<usize> = (0..est_mem.len()).collect();
    order.sort_by(|&a, &b| est_mem[b].cmp(&est_mem[a]));
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let head = order[i];
        let head_mem = est_mem[head] as f64;
        let mut bucket = vec![head];
        let mut j = i + 1;
        while j < order.len() && est_mem[order[j]] as f64 > head_mem * (1.0 - tolerance) {
            bucket.push(order[j]);
            j += 1;
        }
        bucket.sort_unstable(); // forward-timestamp ascending (l.11)
        buckets.push(bucket);
        i = j;
    }
    buckets
}

impl Scheduler for GreedyBucketScheduler {
    fn schedule(&self, est: &ModelProfile, budget: usize) -> CheckpointPlan {
        let n = est.blocks.len();
        let mut plan = CheckpointPlan::none(n);
        if peak_bytes(est, &plan) <= budget {
            return plan; // memory optimisation disabled for small inputs (§VI-D)
        }
        let est_mem: Vec<usize> = est.blocks.iter().map(|b| b.act_bytes).collect();
        let mut queue = BucketQueue::new(&est_mem, self.tolerance);
        // Algorithm 1 l.13: excess = Σ est_mem − M, where M is the part of
        // the budget available to droppable activations. This phase is pure
        // scalar bookkeeping — it never asks for the peak — so selections go
        // straight into the plan and the residency engine is built only
        // once, for the verification pass below.
        let total: usize = peak_bytes(est, &plan);
        let mut excess = total as i64 - budget as i64;
        while excess > 0 {
            // l.15: buckets whose largest member covers the remaining excess
            // (tightest cover first), else l.16-17: the globally largest
            // remaining activation. Both are O(log B) index seeks.
            let bi = match queue
                .tightest_cover(excess as usize)
                .or_else(|| queue.largest())
            {
                Some(bi) => bi,
                None => break, // everything checkpointed already
            };
            // Earliest forward timestamp within the bucket (l.19 + §IV-D).
            let l = queue.pop(bi, &est_mem);
            plan.set(l, true);
            excess -= est_mem[l] as i64;
        }
        // Verification pass against the analytic peak model: the scalar
        // excess bookkeeping ignores timeline effects (e.g. late blocks
        // whose checkpointing doesn't lower the peak, Fig 9), so keep
        // selecting while the estimated peak still exceeds the budget.
        // Each round is O(log L): an O(1) peak query plus two index updates.
        let mut model = ResidencyModel::from_plan(est, &plan);
        while !model.fits(budget) {
            match queue.largest() {
                Some(bi) => {
                    let l = queue.pop(bi, &est_mem);
                    model.set_checkpointed(l, true);
                }
                None => break,
            }
        }
        model.to_plan()
    }

    fn name(&self) -> &'static str {
        "greedy-bucket"
    }
}

/// Alternative scheduler: 0/1-knapsack over "kept" activation bytes.
///
/// Maximises the total activation bytes *kept* (≡ minimises recomputation
/// under the homogeneity assumption cost ∝ bytes) subject to keeping the
/// peak under budget. Solved by value-density greedy with a verification
/// sweep — an upper-bound-quality heuristic adequate for n ≤ dozens of
/// blocks.
#[derive(Debug, Clone, Default)]
pub struct KnapsackScheduler;

impl Scheduler for KnapsackScheduler {
    fn schedule(&self, est: &ModelProfile, budget: usize) -> CheckpointPlan {
        let n = est.blocks.len();
        let plan = CheckpointPlan::none(n);
        if ResidencyModel::from_plan(est, &plan).fits(budget) {
            return plan;
        }
        // Start from everything checkpointed, then un-checkpoint blocks
        // (latest first — late blocks are the cheapest to keep, Fig 9) while
        // the budget holds. Rejected candidates roll back via the undo
        // journal, so the whole sweep is O(L log L).
        let mut model = ResidencyModel::from_plan(est, &CheckpointPlan::all(n));
        for i in (0..n).rev() {
            model.set_checkpointed(i, false);
            if !model.fits(budget) {
                model.undo();
            }
        }
        model.to_plan()
    }

    fn name(&self) -> &'static str {
        "knapsack"
    }
}

/// Cost-aware greedy scheduler: selects blocks by *bytes reclaimed per
/// recompute-FLOP* instead of raw size.
///
/// Algorithm 1 assumes the recompute cost of similar-sized blocks is
/// similar, which holds within BERT's homogeneous encoder stack but not
/// across a heterogeneous model (T5's decoder blocks cost ~1.6× its encoder
/// blocks for comparable activation sizes). This variant exploits the extra
/// per-block forward-time estimates the collector already gathers —
/// plugged in through the paper's "flexible interface".
#[derive(Debug, Clone)]
pub struct CostAwareScheduler {
    /// Bucket tolerance applied to the efficiency metric.
    pub tolerance: f64,
}

impl CostAwareScheduler {
    /// Scheduler with the given efficiency-bucket tolerance.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `tolerance` is outside `[0, 1)`.
    pub fn new(tolerance: f64) -> Self {
        assert!((0.0..1.0).contains(&tolerance));
        CostAwareScheduler { tolerance }
    }
}

impl Scheduler for CostAwareScheduler {
    fn schedule(&self, est: &ModelProfile, budget: usize) -> CheckpointPlan {
        let n = est.blocks.len();
        let mut model = ResidencyModel::from_plan(est, &CheckpointPlan::none(n));
        if model.fits(budget) {
            return model.to_plan();
        }
        // Efficiency = activation bytes reclaimed per unit recompute cost.
        // The estimated profile carries fwd FLOPs of zero (estimator-built
        // profiles use time fits instead); fall back to act_bytes alone
        // when cost information is absent so behaviour degrades to
        // Algorithm 1's size ordering.
        let eff: Vec<f64> = est
            .blocks
            .iter()
            .map(|b| {
                if b.fwd_flops > 0.0 {
                    b.act_bytes as f64 / b.fwd_flops
                } else {
                    b.act_bytes as f64
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        // Best efficiency first. Quantising by the tolerance keeps the
        // comparator transitive while still letting the earlier-timestamp
        // preference (Fig 9) break near-ties.
        let quantise = |e: f64| -> i64 {
            if e <= 0.0 {
                i64::MIN
            } else {
                (e.ln() / (1.0 - self.tolerance).ln().abs()) as i64
            }
        };
        order.sort_by(|&a, &b| quantise(eff[b]).cmp(&quantise(eff[a])).then(a.cmp(&b)));
        for &i in &order {
            if model.fits(budget) {
                break;
            }
            model.set_checkpointed(i, true);
        }
        model.to_plan()
    }

    fn name(&self) -> &'static str {
        "cost-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_planner::memory_model::peak_bytes;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn small_inputs_get_empty_plans() {
        let p = profile(40);
        let s = GreedyBucketScheduler::new(0.10);
        let plan = s.schedule(&p, 8 << 30);
        assert_eq!(plan.count(), 0, "no checkpointing when memory suffices");
    }

    #[test]
    fn plans_respect_budget_in_estimate() {
        let s = GreedyBucketScheduler::new(0.10);
        for seq in [100, 200, 300, 400] {
            let p = profile(seq);
            for budget in [3usize << 30, 4 << 30, 6 << 30] {
                let plan = s.schedule(&p, budget);
                let peak = peak_bytes(&p, &plan);
                let feasible = peak_bytes(&p, &CheckpointPlan::all(p.blocks.len())) <= budget;
                if feasible {
                    assert!(
                        peak <= budget,
                        "seq {seq} budget {}: peak {} MiB",
                        budget >> 30,
                        peak >> 20
                    );
                }
            }
        }
    }

    #[test]
    fn tighter_budget_checkpoints_more() {
        let p = profile(300);
        let s = GreedyBucketScheduler::new(0.10);
        let loose = s.schedule(&p, 7 << 30);
        let tight = s.schedule(&p, 3 << 30);
        assert!(tight.count() > loose.count());
    }

    #[test]
    fn earlier_blocks_preferred_within_buckets() {
        // All 12 BERT encoders share a bucket; a plan needing k of them must
        // take the k earliest.
        let p = profile(300);
        let s = GreedyBucketScheduler::new(0.10);
        let plan = s.schedule(&p, 5 << 30);
        let chosen: Vec<usize> = plan.indices().filter(|&i| (1..=12).contains(&i)).collect();
        if !chosen.is_empty() {
            let k = chosen.len();
            let expect: Vec<usize> = (1..=k).collect();
            assert_eq!(chosen, expect, "not earliest-first: {chosen:?}");
        }
    }

    #[test]
    fn buckets_group_similar_sizes() {
        let est = vec![100, 99, 95, 50, 49, 10];
        let buckets = build_buckets(&est, 0.10);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], vec![0, 1, 2]);
        assert_eq!(buckets[1], vec![3, 4]);
        assert_eq!(buckets[2], vec![5]);
    }

    #[test]
    fn cost_aware_respects_budget() {
        let p = profile(300);
        let s = CostAwareScheduler::new(0.10);
        for budget in [4usize << 30, 5 << 30, 6 << 30] {
            let plan = s.schedule(&p, budget);
            assert!(peak_bytes(&p, &plan) <= budget, "budget {}", budget >> 30);
        }
    }

    #[test]
    fn cost_aware_prefers_cheap_blocks() {
        use mimose_models::BlockProfile;
        // Synthetic heterogeneous model: two blocks with near-equal
        // activations, one 10x cheaper to recompute. A budget that needs
        // exactly one checkpoint must make the cost-aware scheduler pick
        // the cheap block; Algorithm 1 (size-greedy) picks the big one.
        let gib = 1usize << 30;
        let mk = |idx: usize, act: usize, flops: f64| BlockProfile {
            name: format!("b{idx}"),
            stage: 0,
            index: idx,
            act_bytes: act,
            out_bytes: 1 << 20,
            in_bytes: 1 << 20,
            fwd_flops: flops,
            bwd_flops: 2.0 * flops,
            fwd_bytes_moved: act,
            tensors: Vec::new(),
        };
        let p = mimose_models::ModelProfile {
            model: "synthetic".into(),
            input: ModelInput::tokens(1, 1),
            input_size: 1,
            blocks: vec![
                mk(0, gib + (64 << 20), 100e9), // slightly bigger, expensive
                mk(1, gib, 10e9),               // slightly smaller, cheap
                mk(2, 1 << 20, 1e6),            // tiny tail so 0/1 are interior
            ],
            const_bytes: gib,
            param_count: 1,
            input_bytes: 1 << 20,
        };
        // Budget that fits once either big block is checkpointed.
        let budget = peak_bytes(&p, &CheckpointPlan::from_indices(3, &[0]).unwrap()).max(
            peak_bytes(&p, &CheckpointPlan::from_indices(3, &[1]).unwrap()),
        );
        let greedy = GreedyBucketScheduler::new(0.10).schedule(&p, budget);
        let aware = CostAwareScheduler::new(0.10).schedule(&p, budget);
        assert!(greedy.is_checkpointed(0), "size-greedy takes the big block");
        assert!(aware.is_checkpointed(1), "cost-aware takes the cheap block");
        assert!(!aware.is_checkpointed(0));
        let cost =
            |plan: &CheckpointPlan| -> f64 { plan.indices().map(|i| p.blocks[i].fwd_flops).sum() };
        assert!(cost(&aware) < cost(&greedy));
    }

    #[test]
    fn knapsack_also_respects_budget() {
        let p = profile(300);
        let s = KnapsackScheduler;
        let plan = s.schedule(&p, 4 << 30);
        assert!(peak_bytes(&p, &plan) <= 4 << 30);
    }

    #[test]
    fn greedy_close_to_knapsack_quality() {
        // The paper claims the greedy algorithm is "simple but effective";
        // its recompute volume should be within 2 of the knapsack's blocks.
        let p = profile(300);
        let g = GreedyBucketScheduler::new(0.10).schedule(&p, 4 << 30);
        let k = KnapsackScheduler.schedule(&p, 4 << 30);
        assert!(
            g.count() <= k.count() + 2,
            "greedy {} vs knapsack {}",
            g.count(),
            k.count()
        );
    }
}
