//! The Mimose memory policy: sheltered execution (shuttle collection) then
//! responsive execution (estimate → schedule → cache), per Fig 6.

use crate::{AdaptiveState, MemoryEstimator, MimoseConfig, PlanCache, Scheduler, ShuttleSample};
use mimose_models::ModelProfile;
use mimose_planner::{
    CheckpointPlan, Directive, Granularity, IterationObservation, MemoryPolicy, PlanTiming,
    PlannerMeta,
};
use mimose_verify::SizeBucket;
use std::time::Instant;

/// Estimated profile at `x` with the chaos mis-estimation factor applied
/// (identity at 1.0) — the single source of predicted byte figures for
/// planning, revalidation and certification, so they can never disagree.
fn scaled_estimate(
    est: &MemoryEstimator,
    template: &ModelProfile,
    x: f64,
    scale: f64,
) -> ModelProfile {
    let mut est_profile = est.estimated_profile(template, x);
    apply_estimate_scale(&mut est_profile, scale);
    est_profile
}

/// In-place chaos mis-estimation: every byte figure scaled by `scale`.
fn apply_estimate_scale(profile: &mut ModelProfile, scale: f64) {
    if scale != 1.0 {
        for b in &mut profile.blocks {
            b.act_bytes = (b.act_bytes as f64 * scale) as usize;
            b.out_bytes = (b.out_bytes as f64 * scale) as usize;
            b.in_bytes = (b.in_bytes as f64 * scale) as usize;
        }
    }
}

/// Execution phase (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Collecting per-block memory/time samples with the shuttling collector.
    Sheltered,
    /// Estimator trained; plans are generated (or cache-served) per input.
    Responsive,
}

/// Running statistics for the Table III overhead breakdown.
#[derive(Debug, Clone, Default)]
pub struct MimoseStats {
    /// Shuttle (collection) iterations executed.
    pub shuttle_iters: usize,
    /// Wall-clock time spent fitting the estimator (ns).
    pub estimator_fit_ns: u64,
    /// Wall-clock time of each plan generation (estimator + scheduler), ns.
    pub plan_gen_ns: Vec<u64>,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache hits served on the certificate fast path: the stored
    /// [`SafetyCertificate`](mimose_verify::SafetyCertificate) covered the
    /// input size and budget, so the plan shipped after an O(1) check with
    /// no revalidation and no solve.
    pub certified_hits: u64,
    /// Cache hits whose entry carried no (valid) certificate and therefore
    /// paid an O(L) estimator revalidation before being served.
    pub revalidations: u64,
    /// Plans generated (cache misses).
    pub plans_generated: u64,
    /// Responsive-phase re-collections (adaptive extension).
    pub recollections: usize,
    /// In-budget OOM feedback events (adaptive extension).
    pub oom_feedback: usize,
}

impl MimoseStats {
    /// Total estimator+scheduler wall time (ns).
    #[must_use]
    pub fn total_plan_ns(&self) -> u64 {
        self.plan_gen_ns.iter().sum()
    }

    /// (min, max) single plan-generation time in ns, zero when none.
    #[must_use]
    pub fn plan_ns_range(&self) -> (u64, u64) {
        match (self.plan_gen_ns.iter().min(), self.plan_gen_ns.iter().max()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0, 0),
        }
    }
}

/// The Mimose planner (input-aware checkpointing, this paper).
pub struct MimosePolicy {
    cfg: MimoseConfig,
    scheduler: Box<dyn Scheduler>,
    phase: Phase,
    samples: Vec<ShuttleSample>,
    estimator: Option<MemoryEstimator>,
    cache: PlanCache,
    stats: MimoseStats,
    last_overhead_ns: u64,
    /// Hard cap on sheltered iterations (§IV-A: "10~30 iterations").
    max_collect_iters: usize,
    /// Sheltered iterations attempted (including OOMed ones that produced
    /// no sample).
    sheltered_attempts: usize,
    /// Adaptive-extension runtime state.
    adaptive: AdaptiveState,
    /// Set when the current responsive iteration is an adaptive re-shuttle.
    pending_recollect: bool,
}

impl MimosePolicy {
    /// Mimose with the paper's greedy bucket scheduler.
    #[must_use]
    pub fn new(cfg: MimoseConfig) -> Self {
        let tol = cfg.bucket_tolerance;
        Self::with_scheduler(cfg, Box::new(crate::GreedyBucketScheduler::new(tol)))
    }

    /// Mimose with a custom scheduler (the §IV-D "flexible interface").
    #[must_use]
    pub fn with_scheduler(cfg: MimoseConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let cache = PlanCache::new(cfg.cache_relative_width);
        MimosePolicy {
            cfg,
            scheduler,
            phase: Phase::Sheltered,
            samples: Vec::new(),
            estimator: None,
            cache,
            stats: MimoseStats::default(),
            last_overhead_ns: 0,
            max_collect_iters: 30,
            sheltered_attempts: 0,
            adaptive: AdaptiveState::default(),
            pending_recollect: false,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> &MimoseStats {
        &self.stats
    }

    /// The fitted estimator (None during sheltered execution).
    #[must_use]
    pub fn estimator(&self) -> Option<&MemoryEstimator> {
        self.estimator.as_ref()
    }

    /// Configuration.
    #[must_use]
    pub fn config(&self) -> &MimoseConfig {
        &self.cfg
    }

    /// The plan cache (read-only), exposing bucket geometry and certificate
    /// occupancy to instrumentation and the `exp verify` gate.
    #[must_use]
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    fn distinct_sizes(&self) -> usize {
        let mut s: Vec<usize> = self.samples.iter().map(|x| x.input_size).collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    fn ready_to_fit(&self) -> bool {
        let enough_iters = self.samples.len() >= self.cfg.collect_iters;
        let enough_support =
            self.distinct_sizes() >= self.cfg.min_distinct_sizes.max(self.cfg.poly_order + 1);
        (enough_iters && enough_support)
            || self.samples.len() >= self.max_collect_iters
            // A budget too tight even for fully-checkpointed collection can
            // OOM shuttle iterations on the largest inputs; once enough
            // sheltered attempts have passed, fit from whatever succeeded
            // rather than shuttling forever.
            || (self.sheltered_attempts >= 2 * self.max_collect_iters && self.samples.len() >= 2)
    }

    fn try_fit(&mut self) {
        let t0 = Instant::now();
        match MemoryEstimator::fit(&self.samples, self.cfg.poly_order) {
            Ok(est) => {
                self.estimator = Some(est);
                self.phase = Phase::Responsive;
                self.cache.clear();
            }
            Err(_) => {
                // Degenerate support (e.g. a loader that always pads to one
                // size): fall back to a linear fit, then constant.
                for order in (0..self.cfg.poly_order).rev() {
                    if let Ok(est) = MemoryEstimator::fit(&self.samples, order) {
                        self.estimator = Some(est);
                        self.phase = Phase::Responsive;
                        self.cache.clear();
                        break;
                    }
                }
            }
        }
        self.stats.estimator_fit_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Certify `plan` for the whole quantisation bucket containing `x`
    /// under `budget`, then cache it. The envelope is the estimator
    /// evaluated at the bucket endpoints plus each channel's interior
    /// extremum (sound for the quadratic estimator), with the chaos
    /// mis-estimation factor applied so certification and planning can
    /// never disagree about predicted bytes. A plan whose sound bucket-wide
    /// bound exceeds the budget is cached *without* a certificate and pays
    /// an estimator revalidation on every later hit.
    fn certify_and_insert(
        &mut self,
        x: usize,
        budget: usize,
        plan: &CheckpointPlan,
        template: &ModelProfile,
        scale: f64,
    ) {
        let Some(est) = self.estimator.as_ref() else {
            self.cache.insert(x, budget, plan.clone());
            return;
        };
        let (lo, hi) = self.cache.bucket_bounds(x);
        let mut envelope = est.envelope_profiles(template, lo as f64, hi as f64);
        for p in &mut envelope {
            apply_estimate_scale(p, scale);
        }
        match mimose_verify::certify(&envelope, plan, SizeBucket::new(lo, hi), budget) {
            Ok(cert) => self.cache.insert_certified(x, budget, plan.clone(), cert),
            Err(_) => self.cache.insert(x, budget, plan.clone()),
        }
    }
}

impl MemoryPolicy for MimosePolicy {
    fn meta(&self) -> PlannerMeta {
        PlannerMeta {
            name: "Mimose",
            swapping: false,
            checkpointing: true,
            dynamic_input: true,
            dynamic_graph: false,
            frag_avoidance: "side-effect",
            granularity: Granularity::Block,
            timing: PlanTiming::Runtime,
            search_space: "holistic",
            search_algorithm: "greedy",
            solving_time: "short",
        }
    }

    fn budget_bytes(&self) -> usize {
        self.cfg.budget_bytes
    }

    fn begin_iteration(&mut self, _iter: usize, profile: &ModelProfile) -> Directive {
        // Honesty note: Mimose reads only the input size, block count and
        // structural constants from `profile`; memory knowledge comes from
        // its own shuttle measurements.
        let n = profile.blocks.len();
        match self.phase {
            Phase::Sheltered => {
                self.last_overhead_ns = 0;
                Directive::Shuttle(CheckpointPlan::all(n))
            }
            Phase::Responsive => {
                // Adaptive extension: an input far outside the fitted
                // support triggers one more shuttle instead of trusting
                // extrapolation.
                if let (Some(acfg), Some(est)) = (&self.cfg.adaptive, &self.estimator) {
                    let x = profile.input_size as f64;
                    if self.adaptive.needs_recollect(acfg, x, est.x_min, est.x_max) {
                        self.pending_recollect = true;
                        self.last_overhead_ns = 0;
                        return Directive::Shuttle(CheckpointPlan::all(n));
                    }
                }
                let t0 = Instant::now();
                let x = profile.input_size;
                // The budget actually handed to the scheduler: reserve off,
                // restart-shrink feedback applied, OOM backoff subtracted.
                // It also keys the plan cache, so plans generated under a
                // stale (larger) budget are never served after feedback
                // tightened it.
                let budget = ((self.cfg.effective_budget() as f64 * self.adaptive.plan_scale)
                    as usize)
                    .saturating_sub(self.adaptive.backoff_bytes);
                let scale = self.cfg.estimate_scale;
                let hit = self.cache.get_with_certificate(x, budget);
                let plan = match hit {
                    // Certificate fast path: the stored proof covers every
                    // size in the bucket under this budget, so the hit is
                    // served after an O(1) check — no estimator pass, no
                    // revalidation solve.
                    Some((p, Some(cert))) if cert.covers(x) && cert.fits(budget) => {
                        self.stats.cache_hits += 1;
                        self.stats.certified_hits += 1;
                        p
                    }
                    Some((p, _)) => {
                        // Uncertified (or stale-certificate) entry: the plan
                        // was only ever proven for the size it was generated
                        // at, so revalidate the estimate before trusting it.
                        self.stats.cache_hits += 1;
                        self.stats.revalidations += 1;
                        let est = self
                            .estimator
                            .as_ref()
                            .expect("responsive phase without estimator");
                        let est_profile = scaled_estimate(est, profile, x as f64, scale);
                        if mimose_planner::memory_model::peak_bytes(&est_profile, &p) <= budget {
                            p
                        } else {
                            let plan = self.scheduler.schedule(&est_profile, budget);
                            self.certify_and_insert(x, budget, &plan, profile, scale);
                            self.stats.plans_generated += 1;
                            self.stats.plan_gen_ns.push(t0.elapsed().as_nanos() as u64);
                            plan
                        }
                    }
                    None => {
                        let est = self
                            .estimator
                            .as_ref()
                            .expect("responsive phase without estimator");
                        let est_profile = scaled_estimate(est, profile, x as f64, scale);
                        let plan = self.scheduler.schedule(&est_profile, budget);
                        self.certify_and_insert(x, budget, &plan, profile, scale);
                        self.stats.plans_generated += 1;
                        let ns = t0.elapsed().as_nanos() as u64;
                        self.stats.plan_gen_ns.push(ns);
                        plan
                    }
                };
                self.last_overhead_ns = t0.elapsed().as_nanos() as u64;
                Directive::RunPlan(plan)
            }
        }
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        let n = profile.blocks.len();
        match self.phase {
            // Shuttle iterations run under the all-checkpointed plan, whose
            // analytic peak bounds a collection pass like Sublinear's.
            Phase::Sheltered => Some(mimose_planner::memory_model::peak_bytes(
                profile,
                &CheckpointPlan::all(n),
            )),
            // Responsive plans target the configured budget; inputs whose
            // unconstrained peak is already below it never reach it.
            Phase::Responsive => Some(self.cfg.budget_bytes.min(profile.peak_no_checkpoint())),
        }
    }

    fn end_iteration(&mut self, obs: &IterationObservation) {
        if self.phase == Phase::Responsive {
            if self.pending_recollect {
                self.pending_recollect = false;
                if let Some(blocks) = &obs.blocks {
                    self.adaptive.recollections += 1;
                    self.stats.recollections += 1;
                    self.stats.shuttle_iters += 1;
                    self.samples.push(ShuttleSample {
                        input_size: obs.input_size,
                        input_bytes: blocks.first().map(|b| b.in_bytes).unwrap_or(0),
                        blocks: blocks.clone(),
                    });
                    self.try_fit(); // refit with the widened support
                }
            }
            if obs.oom {
                if let Some(acfg) = &self.cfg.adaptive {
                    self.adaptive.on_oom(acfg);
                    self.stats.oom_feedback += 1;
                    // Plans generated under the old margin are suspect.
                    self.cache.clear();
                }
            }
            // Executor recovery feedback: if the iteration only completed
            // via a restart or fallback, the ladder's shrunk budget is what
            // actually fit — adopt its cumulative shrink for future plans.
            if let Some(acfg) = &self.cfg.adaptive {
                if self.adaptive.absorb_recovery(acfg, &obs.recovery) {
                    // Plans generated under the wider budget are suspect.
                    self.cache.clear();
                }
            }
            return;
        }
        if self.phase == Phase::Sheltered {
            self.sheltered_attempts += 1;
            if let Some(blocks) = &obs.blocks {
                self.stats.shuttle_iters += 1;
                self.samples.push(ShuttleSample {
                    input_size: obs.input_size,
                    input_bytes: blocks.first().map(|b| b.in_bytes).unwrap_or(0),
                    blocks: blocks.clone(),
                });
            }
            if self.ready_to_fit() {
                self.try_fit();
            }
        }
    }

    fn last_plan_overhead_ns(&self) -> u64 {
        self.last_overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;
    use mimose_planner::memory_model::peak_bytes;
    use mimose_planner::BlockObservation;

    fn feed_iteration(pol: &mut MimosePolicy, seq: usize, iter: usize) -> Directive {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, seq)).unwrap();
        let d = pol.begin_iteration(iter, &p);
        // Simulate the executor's measurement feedback for shuttle iters.
        let blocks = match &d {
            Directive::Shuttle(_) => Some(
                p.blocks
                    .iter()
                    .map(|b| BlockObservation {
                        index: b.index,
                        act_bytes: b.act_bytes,
                        out_bytes: b.out_bytes,
                        in_bytes: b.in_bytes,
                        fwd_ns: (b.fwd_flops / 6e3) as u64,
                    })
                    .collect(),
            ),
            _ => None,
        };
        pol.end_iteration(&IterationObservation {
            iter,
            input: p.input,
            input_size: p.input_size,
            blocks,
            peak_bytes: 0,
            oom: false,
            recovery: Vec::new(),
        });
        d
    }

    fn varied_seqs() -> Vec<usize> {
        vec![60, 85, 110, 70, 95, 130, 75, 100, 120, 90, 140, 105]
    }

    #[test]
    fn ten_iterations_then_responsive() {
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(6 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            if pol.phase() == Phase::Responsive {
                break;
            }
            let d = feed_iteration(&mut pol, *s, i);
            assert!(matches!(d, Directive::Shuttle(_)));
        }
        assert_eq!(pol.phase(), Phase::Responsive);
        assert_eq!(pol.stats().shuttle_iters, 10);
    }

    #[test]
    fn responsive_plans_fit_budget() {
        let budget = 4usize << 30;
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(budget));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        assert_eq!(pol.phase(), Phase::Responsive);
        let m = bert_base(BertHead::Classification { labels: 2 });
        for seq in [60, 150, 250, 320] {
            let p = m.profile(&ModelInput::tokens(32, seq)).unwrap();
            match pol.begin_iteration(100, &p) {
                Directive::RunPlan(plan) => {
                    let peak = peak_bytes(&p, &plan);
                    assert!(
                        peak <= budget,
                        "seq {seq}: true peak {} MiB over budget",
                        peak >> 20
                    );
                }
                d => panic!("expected RunPlan, got {d:?}"),
            }
        }
    }

    #[test]
    fn small_inputs_run_without_checkpointing() {
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(8 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, 45)).unwrap();
        match pol.begin_iteration(50, &p) {
            Directive::RunPlan(plan) => assert_eq!(plan.count(), 0),
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn repeated_sizes_hit_the_cache() {
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(5 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, 200)).unwrap();
        let _ = pol.begin_iteration(20, &p);
        let gen_before = pol.stats().plans_generated;
        let _ = pol.begin_iteration(21, &p);
        let _ = pol.begin_iteration(22, &p);
        assert_eq!(pol.stats().plans_generated, gen_before);
        assert!(pol.stats().cache_hits >= 2);
    }

    #[test]
    fn certified_bucket_hits_are_zero_solve() {
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(5 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        assert_eq!(pol.phase(), Phase::Responsive);
        let m = bert_base(BertHead::Classification { labels: 2 });
        let certified_before = pol.cache().certified_len();
        let p = m.profile(&ModelInput::tokens(32, 200)).unwrap();
        let _ = pol.begin_iteration(20, &p);
        assert_eq!(
            pol.cache().certified_len(),
            certified_before + 1,
            "miss should certify"
        );
        // A *different* input size in the same quantisation bucket must be
        // served off the certificate: no revalidation, no planner solve.
        let (lo, hi) = pol.cache().bucket_bounds(p.input_size);
        let seq = if p.input_size + 32 <= hi { 201 } else { 199 };
        let q = m.profile(&ModelInput::tokens(32, seq)).unwrap();
        assert!(
            lo <= q.input_size && q.input_size <= hi,
            "bucket too narrow"
        );
        let gen_before = pol.stats().plans_generated;
        match pol.begin_iteration(21, &q) {
            Directive::RunPlan(_) => {}
            d => panic!("{d:?}"),
        }
        assert_eq!(pol.stats().plans_generated, gen_before, "must not re-solve");
        assert_eq!(pol.stats().certified_hits, 1);
        assert_eq!(pol.stats().revalidations, 0);
    }

    #[test]
    fn plan_generation_is_sub_millisecond() {
        // The "lightning" claim: estimator + scheduler < 1 ms per plan.
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(5 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        let m = bert_base(BertHead::Classification { labels: 2 });
        for seq in [150, 200, 260, 310] {
            let p = m.profile(&ModelInput::tokens(32, seq)).unwrap();
            let _ = pol.begin_iteration(30, &p);
        }
        let (_, max_ns) = pol.stats().plan_ns_range();
        let limit = if cfg!(debug_assertions) {
            30_000_000
        } else {
            1_000_000
        };
        assert!(max_ns < limit, "plan generation took {max_ns} ns");
    }

    #[test]
    fn restart_feedback_shrinks_future_budgets() {
        use mimose_planner::{RecoveryEvent, RecoveryRung};
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget_adaptive(6 << 30));
        for (i, s) in varied_seqs().iter().enumerate() {
            feed_iteration(&mut pol, *s, i);
        }
        assert_eq!(pol.phase(), Phase::Responsive);
        let m = bert_base(BertHead::Classification { labels: 2 });
        // Stay inside the fitted support so the adaptive re-collection
        // rung does not fire and we get a plan directly.
        let p = m.profile(&ModelInput::tokens(32, 135)).unwrap();
        let d = pol.begin_iteration(20, &p);
        let plan_before = match d {
            Directive::RunPlan(plan) => plan,
            d => panic!("{d:?}"),
        };
        // The executor reports that this iteration only completed after a
        // restart under a 0.85x budget.
        pol.end_iteration(&IterationObservation {
            iter: 20,
            input: p.input,
            input_size: p.input_size,
            blocks: None,
            peak_bytes: 0,
            oom: false,
            recovery: vec![RecoveryEvent {
                rung: RecoveryRung::Restart,
                attempt: 0,
                phase: "forward",
                requested: 1 << 30,
                ckpt_before: plan_before.count(),
                ckpt_after: plan_before.count() + 2,
                shrink_factor: 0.85,
                time_cost_ns: 1_000,
                freed_bytes: 0,
            }],
        });
        assert!((pol.adaptive.plan_scale - 0.85).abs() < 1e-12);
        // The cache was invalidated and the next plan, generated under the
        // shrunk budget, checkpoints at least as much as before.
        let gen_before = pol.stats().plans_generated;
        let d = pol.begin_iteration(21, &p);
        assert_eq!(pol.stats().plans_generated, gen_before + 1, "must re-plan");
        match d {
            Directive::RunPlan(plan) => assert!(plan.count() >= plan_before.count()),
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn degenerate_single_size_falls_back() {
        // A loader that always produces one size cannot support a quadratic;
        // Mimose must still leave sheltered execution by the 30-iter cap.
        let mut pol = MimosePolicy::new(MimoseConfig::with_budget(6 << 30));
        for i in 0..35 {
            feed_iteration(&mut pol, 128, i);
            if pol.phase() == Phase::Responsive {
                break;
            }
        }
        assert_eq!(pol.phase(), Phase::Responsive, "stuck in sheltered phase");
    }
}
