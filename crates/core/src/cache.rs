//! Plan cache keyed by quantised input size (§V "responsive execution").
//!
//! "The memory usages of similar input sizes are similar, and the generated
//! plans are also similar. Therefore, they can also be the plans of each
//! other." — sizes within one relative-width quantile share a plan.
//!
//! Entries are additionally partitioned by the *effective* planning budget
//! (post-reserve, post-backoff, post-restart-shrink): a plan generated under
//! a 6 GB budget is not a valid answer once OOM feedback tightened the
//! budget to 5 GB, and serving it would re-trigger the very OOM the backoff
//! was meant to prevent. Different budgets never share entries.
//!
//! The cache is bounded: when a capacity is set, inserting into a full cache
//! evicts the least-recently-used bucket. Long multi-dataset runs cycle
//! through many size distributions; without the bound the map grows with the
//! union of every distribution ever seen.

use mimose_planner::CheckpointPlan;
use mimose_verify::SafetyCertificate;
use std::collections::{BTreeMap, HashMap};

/// Size-bucket × budget cache key.
type Key = (u64, u64);

/// One cached plan, optionally carrying the static safety certificate the
/// verifier issued for its whole size bucket.
#[derive(Debug, Clone)]
struct Entry {
    plan: CheckpointPlan,
    certificate: Option<SafetyCertificate>,
    stamp: u64,
}

/// Cache of generated plans with an optional LRU capacity bound.
#[derive(Debug, Clone)]
pub struct PlanCache {
    /// Relative quantisation width (0.04 → ~4 % of the size per bucket).
    width: f64,
    /// Maximum number of stored plans; `usize::MAX` means unbounded.
    capacity: usize,
    /// (size bucket, budget) → cached plan + certificate + recency stamp.
    map: HashMap<Key, Entry>,
    /// Recency index: stamp → key, kept in lockstep with `map`.
    /// The smallest stamp is the least-recently-used bucket.
    recency: BTreeMap<u64, Key>,
    /// Monotonic touch counter feeding the stamps.
    clock: u64,
    /// Hits served from entries *without* a certificate. Disjoint from
    /// `certified_hits`: a lookup bumps exactly one of the two, so
    /// `hits + certified_hits` is the total hit count.
    hits: u64,
    /// Hits served from entries carrying a certificate.
    certified_hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Create an unbounded cache with the given relative quantisation width.
    #[must_use]
    pub fn new(width: f64) -> Self {
        PlanCache::with_capacity(width, usize::MAX)
    }

    /// Create a cache holding at most `capacity` plans; inserting beyond
    /// that evicts the least-recently-used bucket.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `width` is outside `(0, 1)`.
    pub fn with_capacity(width: f64, capacity: usize) -> Self {
        assert!(width > 0.0 && width < 1.0);
        assert!(capacity > 0, "zero-capacity cache cannot hold any plan");
        PlanCache {
            width,
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            hits: 0,
            certified_hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Quantise an input size to its bucket and pair it with the budget the
    /// plan was (or will be) generated under: geometric size bucketing so
    /// the *relative* width stays constant across scales, exact budget so
    /// plans never leak across budget changes.
    fn key(&self, input_size: usize, budget: usize) -> Key {
        let x = (input_size.max(1)) as f64;
        (
            (x.ln() / (1.0 + self.width).ln()).floor() as u64,
            budget as u64,
        )
    }

    /// Mark `k` as most-recently-used, returning its new stamp.
    fn touch(&mut self, k: Key, prev_stamp: Option<u64>) -> u64 {
        if let Some(s) = prev_stamp {
            self.recency.remove(&s);
        }
        self.clock += 1;
        self.recency.insert(self.clock, k);
        self.clock
    }

    /// Look up a plan for this input size generated under exactly this
    /// budget; a hit refreshes its recency.
    pub fn get(&mut self, input_size: usize, budget: usize) -> Option<CheckpointPlan> {
        self.get_with_certificate(input_size, budget).map(|e| e.0)
    }

    /// Look up a plan together with its safety certificate, if the bucket
    /// entry carries one. Counts exactly one hit or miss, like [`get`] —
    /// and exactly one of [`hits`] / [`certified_hits`], never both, so a
    /// certified hit is not double-counted.
    ///
    /// [`get`]: PlanCache::get
    /// [`hits`]: PlanCache::hits
    /// [`certified_hits`]: PlanCache::certified_hits
    pub fn get_with_certificate(
        &mut self,
        input_size: usize,
        budget: usize,
    ) -> Option<(CheckpointPlan, Option<SafetyCertificate>)> {
        let k = self.key(input_size, budget);
        match self.map.get(&k) {
            Some(e) => {
                if e.certificate.is_some() {
                    self.certified_hits += 1;
                } else {
                    self.hits += 1;
                }
                let (plan, cert, prev) = (e.plan.clone(), e.certificate, e.stamp);
                let stamp = self.touch(k, Some(prev));
                if let Some(e) = self.map.get_mut(&k) {
                    e.stamp = stamp;
                }
                Some((plan, cert))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a plan for this input size's bucket under this budget, evicting
    /// the least-recently-used bucket when the cache is at capacity.
    pub fn insert(&mut self, input_size: usize, budget: usize, plan: CheckpointPlan) {
        self.insert_entry(input_size, budget, plan, None);
    }

    /// [`insert`], attaching the verifier's certificate for the bucket so
    /// later hits can be served with an O(1) validity check instead of a
    /// revalidation pass.
    ///
    /// [`insert`]: PlanCache::insert
    pub fn insert_certified(
        &mut self,
        input_size: usize,
        budget: usize,
        plan: CheckpointPlan,
        certificate: SafetyCertificate,
    ) {
        self.insert_entry(input_size, budget, plan, Some(certificate));
    }

    fn insert_entry(
        &mut self,
        input_size: usize,
        budget: usize,
        plan: CheckpointPlan,
        certificate: Option<SafetyCertificate>,
    ) {
        let k = self.key(input_size, budget);
        let prev = self.map.get(&k).map(|e| e.stamp);
        if prev.is_none() && self.map.len() >= self.capacity {
            if let Some((&stamp, &victim)) = self.recency.iter().next() {
                self.recency.remove(&stamp);
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        let stamp = self.touch(k, prev);
        self.map.insert(
            k,
            Entry {
                plan,
                certificate,
                stamp,
            },
        );
    }

    /// The inclusive input-size range `[lo, hi]` sharing `input_size`'s
    /// quantisation bucket — the concretisation the verifier must certify
    /// for a cached plan to be servable across the whole bucket.
    #[must_use]
    pub fn bucket_bounds(&self, input_size: usize) -> (usize, usize) {
        let k = self.key(input_size, 0).0;
        let bucket_of = |s: usize| self.key(s, 0).0;
        let w = 1.0 + self.width;
        // Geometric bucket k covers [w^k, w^(k+1)); float seeds can land on
        // *either* side of each boundary (`powi` rounding), so snap from
        // both directions before widening to the exact integer endpoints.
        let mut lo = (w.powi(k as i32).floor() as usize).max(1);
        while bucket_of(lo) < k {
            lo += 1;
        }
        while lo > 1 && bucket_of(lo) > k {
            lo -= 1;
        }
        while lo > 1 && bucket_of(lo - 1) == k {
            lo -= 1;
        }
        let mut hi = (w.powi(k as i32 + 1).ceil() as usize).max(lo);
        while hi > lo && bucket_of(hi) > k {
            hi -= 1;
        }
        while bucket_of(hi) < k {
            hi += 1;
        }
        while bucket_of(hi + 1) == k {
            hi += 1;
        }
        debug_assert!(lo <= input_size.max(1) && input_size.max(1) <= hi);
        (lo, hi)
    }

    /// A donor plan for repairing a bucket miss: the nearest cached plan
    /// (by bucket distance, then lower bucket first) within
    /// `max_distance` size buckets of `input_size`, under exactly this
    /// budget. Read-only — no recency touch, no hit/miss accounting; the
    /// primary lookup already counted the miss that led here.
    #[must_use]
    pub fn neighbor_plan(
        &self,
        input_size: usize,
        budget: usize,
        max_distance: u64,
    ) -> Option<CheckpointPlan> {
        let (k, b) = self.key(input_size, budget);
        for d in 1..=max_distance {
            for nk in [k.checked_sub(d), k.checked_add(d)].into_iter().flatten() {
                if let Some(e) = self.map.get(&(nk, b)) {
                    return Some(e.plan.clone());
                }
            }
        }
        None
    }

    /// Number of stored plans carrying a certificate.
    #[must_use]
    pub fn certified_len(&self) -> usize {
        self.map
            .values()
            .filter(|e| e.certificate.is_some())
            .count()
    }

    /// Hits served from *uncertified* entries so far. Disjoint from
    /// [`certified_hits`](PlanCache::certified_hits); the total hit count
    /// is the sum of the two.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hits served from certified entries so far.
    #[must_use]
    pub fn certified_hits(&self) -> u64 {
        self.certified_hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum number of stored plans (`usize::MAX` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all stored plans (e.g. after re-fitting the estimator).
    /// Eviction/hit/miss counters are preserved; `clear` is not an eviction.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = 6 << 30;

    #[test]
    fn nearby_sizes_share_a_bucket() {
        let mut c = PlanCache::new(0.05);
        c.insert(10_000, B, CheckpointPlan::all(4));
        assert!(c.get(10_100, B).is_some(), "1 % away should hit");
        assert!(c.get(20_000, B).is_none(), "2x away should miss");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn relative_width_scales_with_magnitude() {
        let mut c = PlanCache::new(0.05);
        c.insert(1_000_000, B, CheckpointPlan::none(4));
        // 3 % away at the million scale still hits.
        assert!(c.get(1_030_000, B).is_some());
    }

    #[test]
    fn distinct_plans_per_bucket() {
        let mut c = PlanCache::new(0.04);
        c.insert(1_000, B, CheckpointPlan::all(3));
        c.insert(4_000, B, CheckpointPlan::none(3));
        assert_eq!(c.get(1_000, B).unwrap().count(), 3);
        assert_eq!(c.get(4_000, B).unwrap().count(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn budgets_partition_the_cache() {
        let mut c = PlanCache::new(0.04);
        // Same input size, two budgets: a tightened budget must *miss* and
        // get its own, more conservative plan — never the stale one.
        c.insert(10_000, 6 << 30, CheckpointPlan::none(4));
        assert!(c.get(10_000, 5 << 30).is_none(), "tighter budget must miss");
        c.insert(10_000, 5 << 30, CheckpointPlan::all(4));
        assert_eq!(c.get(10_000, 6 << 30).unwrap().count(), 0);
        assert_eq!(c.get(10_000, 5 << 30).unwrap().count(), 4);
        assert_eq!(c.len(), 2, "budgets hold separate entries");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = PlanCache::new(0.04);
        c.insert(100, B, CheckpointPlan::none(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(100, B).is_none());
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let mut c = PlanCache::with_capacity(0.04, 2);
        // Three well-separated sizes → three distinct buckets.
        c.insert(1_000, B, CheckpointPlan::all(1));
        c.insert(10_000, B, CheckpointPlan::all(2));
        // Touch the older bucket so 10_000 becomes the LRU.
        assert!(c.get(1_000, B).is_some());
        c.insert(100_000, B, CheckpointPlan::all(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(10_000, B).is_none(), "LRU bucket was evicted");
        assert!(
            c.get(1_000, B).is_some(),
            "recently touched bucket survives"
        );
        assert!(c.get(100_000, B).is_some());
    }

    #[test]
    fn reinsert_into_existing_bucket_never_evicts() {
        let mut c = PlanCache::with_capacity(0.04, 2);
        c.insert(1_000, B, CheckpointPlan::all(1));
        c.insert(10_000, B, CheckpointPlan::all(2));
        // Overwriting a resident bucket is an update, not a new entry.
        c.insert(1_000, B, CheckpointPlan::none(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(1_000, B).unwrap().count(), 0);
    }

    #[test]
    fn hit_miss_evict_accounting() {
        let mut c = PlanCache::with_capacity(0.04, 1);
        assert!(c.get(500, B).is_none()); // miss
        c.insert(500, B, CheckpointPlan::all(1));
        assert!(c.get(500, B).is_some()); // hit
        c.insert(50_000, B, CheckpointPlan::all(2)); // evicts 500's bucket
        assert!(c.get(500, B).is_none()); // miss
        assert!(c.get(50_000, B).is_some()); // hit
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = PlanCache::new(0.04);
        for i in 0..64 {
            c.insert(1_000 << i.min(40), B, CheckpointPlan::none(1));
        }
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn bucket_bounds_are_exactly_one_bucket() {
        let c = PlanCache::new(0.04);
        for &s in &[1usize, 7, 997, 10_000, 1_000_000, 50_000_000] {
            let (lo, hi) = c.bucket_bounds(s);
            assert!(lo <= s && s <= hi, "{s}: [{lo}, {hi}]");
            let k = c.key(s, 0).0;
            assert_eq!(c.key(lo, 0).0, k, "lo of {s}");
            assert_eq!(c.key(hi, 0).0, k, "hi of {s}");
            assert_ne!(c.key(hi + 1, 0).0, k, "hi+1 of {s}");
            if lo > 1 {
                assert_ne!(c.key(lo - 1, 0).0, k, "lo-1 of {s}");
            }
        }
    }

    #[test]
    fn certificates_ride_with_entries() {
        use mimose_verify::{plan_hash, SizeBucket};
        let mut c = PlanCache::new(0.04);
        let plan = CheckpointPlan::all(4);
        let (lo, hi) = c.bucket_bounds(10_000);
        let cert = SafetyCertificate {
            bucket: SizeBucket::new(lo, hi),
            peak_upper_bound: 123,
            largest_alloc: 0,
            plan_hash: plan_hash(&plan),
        };
        c.insert_certified(10_000, B, plan.clone(), cert);
        assert_eq!(c.certified_len(), 1);
        // Any other size in the same bucket serves the certified entry.
        let other = if hi > 10_000 { hi } else { lo };
        let (got, got_cert) = c.get_with_certificate(other, B).unwrap();
        assert_eq!(got, plan);
        let got_cert = got_cert.unwrap();
        assert!(got_cert.covers(other));
        assert!(got_cert.matches_plan(&plan));
        // Plain insert replaces the certificate with nothing.
        c.insert(10_000, B, CheckpointPlan::none(4));
        assert_eq!(c.certified_len(), 0);
        let (_, none_cert) = c.get_with_certificate(10_000, B).unwrap();
        assert!(none_cert.is_none());
        // One certified hit, one uncertified — never double-counted.
        assert_eq!(c.certified_hits(), 1);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn bucket_bounds_exact_at_width_boundaries() {
        // Regression: the float seeds `w^k` / `w^(k+1)` can land on either
        // side of the true integer boundary; every size — including the
        // exact endpoints of each bucket — must get back the identical
        // exact `[lo, hi]` with both endpoints in-bucket and both
        // outside-neighbors out.
        for width in [0.01, 0.02, 0.04, 0.05, 0.10, 0.25] {
            let c = PlanCache::new(width);
            let mut s = 1usize;
            while s < 100_000_000 {
                let (lo, hi) = c.bucket_bounds(s);
                let k = c.key(s, 0).0;
                assert!(lo <= s && s <= hi, "w={width} s={s}: [{lo}, {hi}]");
                assert_eq!(c.key(lo, 0).0, k, "w={width} lo of {s}");
                assert_eq!(c.key(hi, 0).0, k, "w={width} hi of {s}");
                assert_ne!(c.key(hi + 1, 0).0, k, "w={width} hi+1 of {s}");
                if lo > 1 {
                    assert_ne!(c.key(lo - 1, 0).0, k, "w={width} lo-1 of {s}");
                }
                // The boundary sizes themselves must agree with the bucket
                // they report: the next bucket starts exactly at hi+1.
                assert_eq!(c.bucket_bounds(lo), (lo, hi), "w={width} lo of {s}");
                assert_eq!(c.bucket_bounds(hi), (lo, hi), "w={width} hi of {s}");
                let (nlo, _) = c.bucket_bounds(hi + 1);
                assert_eq!(nlo, hi + 1, "w={width} next bucket after {s}");
                // Jump to the next bucket, probing both of its endpoints.
                s = hi + 1;
            }
        }
    }

    #[test]
    fn neighbor_probe_finds_adjacent_buckets_only() {
        let mut c = PlanCache::new(0.04);
        c.insert(10_000, B, CheckpointPlan::all(4));
        let (lo, hi) = c.bucket_bounds(10_000);
        // One bucket up and one down are donors; same budget only.
        assert!(c.neighbor_plan(hi + 1, B, 1).is_some());
        assert!(c.neighbor_plan(lo - 1, B, 1).is_some());
        assert!(c.neighbor_plan(hi + 1, B - 1, 1).is_none(), "budget keyed");
        // Far away needs a larger allowed distance.
        let (_, hi2) = c.bucket_bounds(hi + 1);
        assert!(c.neighbor_plan(hi2 + 1, B, 1).is_none());
        assert!(c.neighbor_plan(hi2 + 1, B, 2).is_some());
        // The probe is read-only: no hit/miss accounting.
        assert_eq!(c.hits() + c.certified_hits(), 0);
        assert_eq!(c.misses(), 0);
    }
}
