//! Plan cache keyed by quantised input size (§V "responsive execution").
//!
//! "The memory usages of similar input sizes are similar, and the generated
//! plans are also similar. Therefore, they can also be the plans of each
//! other." — sizes within one relative-width quantile share a plan.

use mimose_planner::CheckpointPlan;
use std::collections::HashMap;

/// Cache of generated plans.
#[derive(Debug, Clone)]
pub struct PlanCache {
    /// Relative quantisation width (0.04 → ~4 % of the size per bucket).
    width: f64,
    map: HashMap<u64, CheckpointPlan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Create a cache with the given relative quantisation width.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0 && width < 1.0);
        PlanCache {
            width,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Quantise an input size to its cache key: geometric bucketing so the
    /// *relative* width stays constant across scales.
    fn key(&self, input_size: usize) -> u64 {
        let x = (input_size.max(1)) as f64;
        (x.ln() / (1.0 + self.width).ln()).floor() as u64
    }

    /// Look up a plan for this input size.
    pub fn get(&mut self, input_size: usize) -> Option<CheckpointPlan> {
        let k = self.key(input_size);
        match self.map.get(&k) {
            Some(p) => {
                self.hits += 1;
                Some(p.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a plan for this input size's bucket.
    pub fn insert(&mut self, input_size: usize, plan: CheckpointPlan) {
        let k = self.key(input_size);
        self.map.insert(k, plan);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of stored plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all stored plans (e.g. after re-fitting the estimator).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearby_sizes_share_a_bucket() {
        let mut c = PlanCache::new(0.05);
        c.insert(10_000, CheckpointPlan::all(4));
        assert!(c.get(10_100).is_some(), "1 % away should hit");
        assert!(c.get(20_000).is_none(), "2x away should miss");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn relative_width_scales_with_magnitude() {
        let mut c = PlanCache::new(0.05);
        c.insert(1_000_000, CheckpointPlan::none(4));
        // 3 % away at the million scale still hits.
        assert!(c.get(1_030_000).is_some());
    }

    #[test]
    fn distinct_plans_per_bucket() {
        let mut c = PlanCache::new(0.04);
        c.insert(1_000, CheckpointPlan::all(3));
        c.insert(4_000, CheckpointPlan::none(3));
        assert_eq!(c.get(1_000).unwrap().count(), 3);
        assert_eq!(c.get(4_000).unwrap().count(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = PlanCache::new(0.04);
        c.insert(100, CheckpointPlan::none(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(100).is_none());
    }
}
