//! Plan cache keyed by quantised input size (§V "responsive execution").
//!
//! "The memory usages of similar input sizes are similar, and the generated
//! plans are also similar. Therefore, they can also be the plans of each
//! other." — sizes within one relative-width quantile share a plan.
//!
//! Entries are additionally partitioned by the *effective* planning budget
//! (post-reserve, post-backoff, post-restart-shrink): a plan generated under
//! a 6 GB budget is not a valid answer once OOM feedback tightened the
//! budget to 5 GB, and serving it would re-trigger the very OOM the backoff
//! was meant to prevent. Different budgets never share entries.
//!
//! The cache is bounded: when a capacity is set, inserting into a full cache
//! evicts the least-recently-used bucket. Long multi-dataset runs cycle
//! through many size distributions; without the bound the map grows with the
//! union of every distribution ever seen.

use mimose_planner::CheckpointPlan;
use std::collections::{BTreeMap, HashMap};

/// Size-bucket × budget cache key.
type Key = (u64, u64);

/// Cache of generated plans with an optional LRU capacity bound.
#[derive(Debug, Clone)]
pub struct PlanCache {
    /// Relative quantisation width (0.04 → ~4 % of the size per bucket).
    width: f64,
    /// Maximum number of stored plans; `usize::MAX` means unbounded.
    capacity: usize,
    /// (size bucket, budget) → (plan, recency stamp of the last touch).
    map: HashMap<Key, (CheckpointPlan, u64)>,
    /// Recency index: stamp → key, kept in lockstep with `map`.
    /// The smallest stamp is the least-recently-used bucket.
    recency: BTreeMap<u64, Key>,
    /// Monotonic touch counter feeding the stamps.
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Create an unbounded cache with the given relative quantisation width.
    pub fn new(width: f64) -> Self {
        PlanCache::with_capacity(width, usize::MAX)
    }

    /// Create a cache holding at most `capacity` plans; inserting beyond
    /// that evicts the least-recently-used bucket.
    pub fn with_capacity(width: f64, capacity: usize) -> Self {
        assert!(width > 0.0 && width < 1.0);
        assert!(capacity > 0, "zero-capacity cache cannot hold any plan");
        PlanCache {
            width,
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Quantise an input size to its bucket and pair it with the budget the
    /// plan was (or will be) generated under: geometric size bucketing so
    /// the *relative* width stays constant across scales, exact budget so
    /// plans never leak across budget changes.
    fn key(&self, input_size: usize, budget: usize) -> Key {
        let x = (input_size.max(1)) as f64;
        (
            (x.ln() / (1.0 + self.width).ln()).floor() as u64,
            budget as u64,
        )
    }

    /// Mark `k` as most-recently-used, returning its new stamp.
    fn touch(&mut self, k: Key, prev_stamp: Option<u64>) -> u64 {
        if let Some(s) = prev_stamp {
            self.recency.remove(&s);
        }
        self.clock += 1;
        self.recency.insert(self.clock, k);
        self.clock
    }

    /// Look up a plan for this input size generated under exactly this
    /// budget; a hit refreshes its recency.
    pub fn get(&mut self, input_size: usize, budget: usize) -> Option<CheckpointPlan> {
        let k = self.key(input_size, budget);
        match self.map.get(&k) {
            Some((p, stamp)) => {
                self.hits += 1;
                let (plan, prev) = (p.clone(), *stamp);
                let stamp = self.touch(k, Some(prev));
                self.map.get_mut(&k).expect("just read").1 = stamp;
                Some(plan)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a plan for this input size's bucket under this budget, evicting
    /// the least-recently-used bucket when the cache is at capacity.
    pub fn insert(&mut self, input_size: usize, budget: usize, plan: CheckpointPlan) {
        let k = self.key(input_size, budget);
        let prev = self.map.get(&k).map(|&(_, s)| s);
        if prev.is_none() && self.map.len() >= self.capacity {
            if let Some((&stamp, &victim)) = self.recency.iter().next() {
                self.recency.remove(&stamp);
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        let stamp = self.touch(k, prev);
        self.map.insert(k, (plan, stamp));
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum number of stored plans (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all stored plans (e.g. after re-fitting the estimator).
    /// Eviction/hit/miss counters are preserved; `clear` is not an eviction.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = 6 << 30;

    #[test]
    fn nearby_sizes_share_a_bucket() {
        let mut c = PlanCache::new(0.05);
        c.insert(10_000, B, CheckpointPlan::all(4));
        assert!(c.get(10_100, B).is_some(), "1 % away should hit");
        assert!(c.get(20_000, B).is_none(), "2x away should miss");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn relative_width_scales_with_magnitude() {
        let mut c = PlanCache::new(0.05);
        c.insert(1_000_000, B, CheckpointPlan::none(4));
        // 3 % away at the million scale still hits.
        assert!(c.get(1_030_000, B).is_some());
    }

    #[test]
    fn distinct_plans_per_bucket() {
        let mut c = PlanCache::new(0.04);
        c.insert(1_000, B, CheckpointPlan::all(3));
        c.insert(4_000, B, CheckpointPlan::none(3));
        assert_eq!(c.get(1_000, B).unwrap().count(), 3);
        assert_eq!(c.get(4_000, B).unwrap().count(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn budgets_partition_the_cache() {
        let mut c = PlanCache::new(0.04);
        // Same input size, two budgets: a tightened budget must *miss* and
        // get its own, more conservative plan — never the stale one.
        c.insert(10_000, 6 << 30, CheckpointPlan::none(4));
        assert!(c.get(10_000, 5 << 30).is_none(), "tighter budget must miss");
        c.insert(10_000, 5 << 30, CheckpointPlan::all(4));
        assert_eq!(c.get(10_000, 6 << 30).unwrap().count(), 0);
        assert_eq!(c.get(10_000, 5 << 30).unwrap().count(), 4);
        assert_eq!(c.len(), 2, "budgets hold separate entries");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = PlanCache::new(0.04);
        c.insert(100, B, CheckpointPlan::none(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(100, B).is_none());
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let mut c = PlanCache::with_capacity(0.04, 2);
        // Three well-separated sizes → three distinct buckets.
        c.insert(1_000, B, CheckpointPlan::all(1));
        c.insert(10_000, B, CheckpointPlan::all(2));
        // Touch the older bucket so 10_000 becomes the LRU.
        assert!(c.get(1_000, B).is_some());
        c.insert(100_000, B, CheckpointPlan::all(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(10_000, B).is_none(), "LRU bucket was evicted");
        assert!(
            c.get(1_000, B).is_some(),
            "recently touched bucket survives"
        );
        assert!(c.get(100_000, B).is_some());
    }

    #[test]
    fn reinsert_into_existing_bucket_never_evicts() {
        let mut c = PlanCache::with_capacity(0.04, 2);
        c.insert(1_000, B, CheckpointPlan::all(1));
        c.insert(10_000, B, CheckpointPlan::all(2));
        // Overwriting a resident bucket is an update, not a new entry.
        c.insert(1_000, B, CheckpointPlan::none(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(1_000, B).unwrap().count(), 0);
    }

    #[test]
    fn hit_miss_evict_accounting() {
        let mut c = PlanCache::with_capacity(0.04, 1);
        assert!(c.get(500, B).is_none()); // miss
        c.insert(500, B, CheckpointPlan::all(1));
        assert!(c.get(500, B).is_some()); // hit
        c.insert(50_000, B, CheckpointPlan::all(2)); // evicts 500's bucket
        assert!(c.get(500, B).is_none()); // miss
        assert!(c.get(50_000, B).is_some()); // hit
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = PlanCache::new(0.04);
        for i in 0..64 {
            c.insert(1_000 << i.min(40), B, CheckpointPlan::none(1));
        }
        assert_eq!(c.evictions(), 0);
    }
}
