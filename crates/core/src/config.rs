//! Mimose configuration.

use crate::AdaptiveConfig;

/// Tunables of the Mimose planner (§IV, §V).
#[derive(Debug, Clone)]
pub struct MimoseConfig {
    /// GPU memory budget in bytes that every iteration must respect.
    pub budget_bytes: usize,
    /// Number of sheltered (shuttle-collection) iterations before the
    /// estimator is trained. Paper: 10 (evaluated 10–30 in §VI-E).
    pub collect_iters: usize,
    /// Bucket tolerance of Algorithm 1: layers within `(1 − tol)` of a
    /// bucket head's estimated memory join the bucket. Paper: ±10 %.
    pub bucket_tolerance: f64,
    /// Plan-cache quantisation: input sizes within the same quantile share a
    /// plan ("the memory usages of similar input sizes are similar", §V).
    /// Expressed as a relative width, e.g. 0.05 → sizes within 5 % share.
    pub cache_relative_width: f64,
    /// Headroom subtracted from the budget to absorb allocator fragmentation
    /// (§VI-D: "Mimose usually needs to reserve 0.5 GB~1 GB").
    pub reserve_bytes: usize,
    /// Polynomial order of the memory estimator. Paper: 2 (Table IV).
    pub poly_order: usize,
    /// Keep shuttling past `collect_iters` until this many *distinct* input
    /// sizes have been observed (a degenerate loader could repeat one size;
    /// a quadratic needs ≥ 3 support points). Hard cap at 30 (§IV-A).
    pub min_distinct_sizes: usize,
    /// Optional adaptive extensions: responsive-phase re-collection on
    /// far-out-of-support inputs and OOM backoff (see [`AdaptiveConfig`]).
    pub adaptive: Option<AdaptiveConfig>,
    /// Multiplier applied to every estimated byte figure before scheduling.
    /// 1.0 (the default) is the honest estimator; the chaos experiments set
    /// it below 1.0 to emulate a systematically under-predicting estimator
    /// and exercise the executor's OOM-recovery ladder.
    pub estimate_scale: f64,
}

impl MimoseConfig {
    /// Paper defaults for the given budget.
    #[must_use]
    pub fn with_budget(budget_bytes: usize) -> Self {
        MimoseConfig {
            budget_bytes,
            collect_iters: 10,
            bucket_tolerance: 0.10,
            cache_relative_width: 0.04,
            reserve_bytes: 512 << 20,
            poly_order: 2,
            min_distinct_sizes: 4,
            adaptive: None,
            estimate_scale: 1.0,
        }
    }

    /// Paper defaults plus the adaptive extensions enabled.
    #[must_use]
    pub fn with_budget_adaptive(budget_bytes: usize) -> Self {
        MimoseConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..MimoseConfig::with_budget(budget_bytes)
        }
    }

    /// The budget actually available to the scheduler after the
    /// fragmentation reserve.
    #[must_use]
    pub fn effective_budget(&self) -> usize {
        self.budget_bytes.saturating_sub(self.reserve_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MimoseConfig::with_budget(6 << 30);
        assert_eq!(c.collect_iters, 10);
        assert!((c.bucket_tolerance - 0.10).abs() < 1e-12);
        assert_eq!(c.poly_order, 2);
        assert!(c.reserve_bytes >= 256 << 20);
    }

    #[test]
    fn effective_budget_subtracts_reserve() {
        let c = MimoseConfig::with_budget(6 << 30);
        assert_eq!(c.effective_budget(), (6 << 30) - (512 << 20));
        let tiny = MimoseConfig::with_budget(100);
        assert_eq!(tiny.effective_budget(), 0);
    }
}
