//! # mimose-core
//!
//! *Mimose*: the input-aware tensor-checkpointing planner of the paper. The
//! three components of Fig 6 live here — the **shuttling online collector**
//! (sheltered execution; the double-forward measurement itself runs in
//! `mimose-exec`), the **lightning memory estimator** (per-block quadratic
//! polynomials over the input size) and the **responsive memory scheduler**
//! (Algorithm 1 greedy bucketing + plan cache), plus the **incremental
//! plan repair** rung that serves bucket misses from a neighboring
//! bucket's plan instead of a cold solve (hit → repair → solve ladder).

#![warn(missing_docs)]

mod adaptive;
mod cache;
mod config;
mod estimator;
mod policy;
mod repair;
mod scheduler;

pub use adaptive::{AdaptiveConfig, AdaptiveState};
pub use cache::PlanCache;
pub use config::MimoseConfig;
pub use estimator::{MemoryEstimator, ShuttleSample};
pub use policy::{MimosePolicy, MimoseStats, Phase};
pub use repair::{covering_flop_lower_bound, repair_plan, RepairConfig};
pub use scheduler::{CostAwareScheduler, GreedyBucketScheduler, KnapsackScheduler, Scheduler};
