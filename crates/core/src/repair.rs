//! Incremental plan repair — the middle rung of the responsive ladder.
//!
//! The paper's core exploit is that input sizes recur *and cluster*: a
//! bucket miss is almost always one bucket away from a cached plan. A full
//! re-solve at that point costs 10²–10³ µs (greedy–MONeT at 1024 blocks);
//! repairing the neighbor's plan against the new profile costs a handful of
//! `O(log L)` residency flips. The responsive path therefore runs a
//! three-tier ladder: certified cache **hit** (~50 ns) → neighbor-plan
//! **repair** (this module) → cold **solve** (the configured scheduler).
//!
//! ## Algorithm
//!
//! The donor plan is repaired closed-form against the *new* estimated
//! profile — one streaming sweep of the peak candidates plus two bounded
//! greedy phases, no residency tree and no full density sort, so the whole
//! repair is `O(L + f·log L)` for `f` productive flips:
//!
//! 1. **Fit** — walk the closed-form candidates left to right carrying the
//!    donor's checkpoint bits; whenever a candidate overflows the budget,
//!    pop the cheapest-density non-checkpointed block seen so far (a small
//!    min-heap) and checkpoint it. A flip at `j` lowers every candidate
//!    after `j`, never one before, so the sweep is *exact*: if the heap
//!    runs dry at position `k`, no extension of the donor plan can fit and
//!    the caller falls back to a cold solve.
//! 2. **Trim** — un-checkpointing block `i` raises every candidate after
//!    `i` by exactly `act_i` (and nothing else), so the last block is
//!    always free to shed, and any block whose `act` fits the current
//!    slack `budget − peak` is shed without further checking; candidates
//!    are drawn highest recompute density first from a max-heap until the
//!    slack cannot cover even the cheapest remaining activation.
//!
//! ## Quality bound
//!
//! In the block memory model the peak is the largest closed-form candidate
//! `base + S(i) + act_i + 2·out_i + in_i`, and a block's own bit never
//! changes its own candidate (Fig 9's suffix-delta independence). Let `i*`
//! be the candidate argmax under the *empty* plan. For any feasible `P`,
//! `budget ≥ peak(P) ≥ C_{i*}(P) = peak(no-ckpt) − Σ_{j<i*, j∈ckpt} act_j`,
//! so every feasible plan must checkpoint at least
//! `excess = peak(no-ckpt) − budget` activation bytes **among blocks before
//! `i*`**. The cheapest *fractional* covering of that excess — prefix
//! blocks taken in ascending FLOPs-per-byte order, last one pro-rated — is
//! therefore a lower bound `lb` on the recompute FLOPs of **every**
//! feasible plan, including whatever the cold solver would have produced
//! (an analogous forward-end-residency constraint over all blocks is
//! max'd in; see [`covering_flop_lower_bound`]). A repair is accepted only
//! when its FLOPs are within [`RepairConfig::max_quality_ratio`] of `lb`,
//! which transitively bounds it against the cold solve without ever
//! running one.

use mimose_models::ModelProfile;
use mimose_planner::CheckpointPlan;

/// Knobs for the repair pass, with the defaults the policy ships.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Accept a repaired plan only when `recompute_flops ≤ ratio × lb`
    /// where `lb` is the fractional covering lower bound (see the module
    /// docs). `1.10` by default — the differential suite pins that every
    /// accepted repair is within 1.10× of the cold solve.
    pub max_quality_ratio: f64,
    /// How many size buckets away a donor plan may come from.
    pub max_neighbor_distance: u64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_quality_ratio: 1.10,
            max_neighbor_distance: 2,
        }
    }
}

/// A block ordered by recompute density (FLOPs per activation byte)
/// *without dividing*: `f_a/a_a < f_b/a_b ⟺ f_a·a_b < f_b·a_a` for the
/// positive activation sizes the heaps ever hold, so each comparison is
/// two multiplies instead of a division per block up front. Ties break by
/// index so heap pops are deterministic. Carries `flops` so productive
/// flips can adjust the running plan cost without re-reading the profile.
#[derive(Clone, Copy, Debug)]
struct DensItem {
    flops: f64,
    act: usize,
    i: u32,
}

impl Ord for DensItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.flops * other.act as f64)
            .total_cmp(&(other.flops * self.act as f64))
            .then(self.i.cmp(&other.i))
    }
}

impl PartialOrd for DensItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for DensItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for DensItem {}

/// Blocks with activations, ascending by recompute density (FLOPs per
/// activation byte), ties by index. The key packs the density's IEEE-754
/// bit pattern (order-identical to the value for the non-negative finite
/// densities profiles produce) so the sort is a branch-cheap `u64` sort.
/// Only the exact covering bound needs the full order; the repair hot
/// path orders lazily through small [`DensItem`] heaps instead.
fn density_order(profile: &ModelProfile) -> Vec<(u64, u32)> {
    let mut order: Vec<(u64, u32)> = profile
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.act_bytes > 0)
        .map(|(i, b)| {
            (
                (b.fwd_flops.max(0.0) / b.act_bytes as f64).to_bits(),
                i as u32,
            )
        })
        .collect();
    order.sort_unstable();
    order
}

/// Cheapest fractional covering of `excess` activation bytes by the blocks
/// with index `< bound`, walked in the shared ascending-density order with
/// the last block pro-rated. When even all of them cannot cover the
/// excess, their full FLOPs are returned (the constraint is then
/// unsatisfiable, so any value vacuously lower-bounds the empty set of
/// feasible plans).
fn fractional_cover(
    profile: &ModelProfile,
    order: &[(u64, u32)],
    excess: usize,
    bound: usize,
) -> f64 {
    if excess == 0 {
        return 0.0;
    }
    let mut remaining = excess as f64;
    let mut lb = 0.0;
    for &(_, i) in order {
        let i = i as usize;
        if i >= bound {
            continue;
        }
        let b = &profile.blocks[i];
        let act = b.act_bytes as f64;
        if act >= remaining {
            return lb + b.fwd_flops * (remaining / act);
        }
        lb += b.fwd_flops;
        remaining -= act;
    }
    lb
}

/// The fractional covering lower bound on recompute FLOPs for *any* plan
/// fitting `budget` on `profile` (see the module docs for the argument).
/// Zero when the unconstrained peak already fits.
///
/// Two sound covering constraints are combined (max):
///
/// * **Peak-candidate prefix** — the unconstrained peak is the candidate
///   `base + S(i*) + act + 2·out + in` at some block `i*`, and only
///   checkpoints *strictly before* `i*` lower that candidate (a block's own
///   bit never changes its own candidate), so feasible plans must cover
///   `peak(no-ckpt) − budget` using blocks `j < i*` alone;
/// * **Forward-end residency** — after the forward pass every
///   non-checkpointed activation is resident, so feasible plans must cover
///   `(base + Σ out + Σ act) − budget` using any blocks.
#[must_use]
pub fn covering_flop_lower_bound(profile: &ModelProfile, budget: usize) -> f64 {
    covering_lb_ordered(profile, budget, &density_order(profile))
}

/// [`covering_flop_lower_bound`] against a precomputed [`density_order`],
/// so the repair hot path shares one sort across all its passes.
fn covering_lb_ordered(profile: &ModelProfile, budget: usize, order: &[(u64, u32)]) -> f64 {
    // One sweep of the closed-form candidates: the no-checkpoint peak and
    // its argmax position, plus the forward-end residency.
    let base = profile.const_bytes + profile.input_bytes;
    let mut s = base;
    let mut peak = base;
    let mut argmax = 0usize;
    for (i, b) in profile.blocks.iter().enumerate() {
        let cand = s + b.act_bytes + 2 * b.out_bytes + b.in_bytes;
        if cand > peak {
            peak = cand;
            argmax = i;
        }
        s += b.out_bytes + b.act_bytes;
    }
    let prefix = fractional_cover(profile, order, peak.saturating_sub(budget), argmax);
    let fwd_end = fractional_cover(profile, order, s.saturating_sub(budget), usize::MAX);
    prefix.max(fwd_end)
}

/// Repair `donor` (a plan cached for a *neighboring* size bucket) against
/// the new `profile` under `budget`. Returns the repaired plan, or `None`
/// when the repair cannot fit the budget or misses the quality bound — the
/// caller then falls back to a cold solve.
#[must_use]
pub fn repair_plan(
    profile: &ModelProfile,
    donor: &CheckpointPlan,
    budget: usize,
    cfg: &RepairConfig,
) -> Option<CheckpointPlan> {
    let n = profile.blocks.len();
    if donor.len() != n {
        // A neighbor bucket with a different block count (variable-depth
        // models) cannot seed a repair.
        return None;
    }

    // Phase 1 — fit, one exact left-to-right cover sweep that doubles as
    // the gather pass: it reads the (large, name-carrying) block structs
    // exactly once, filling compact cache-resident columns for the later
    // phases while it walks the closed-form candidates. `reduced` is the
    // total activation of blocks this sweep checkpointed, all at indices
    // `< k`, so `cand − reduced` is block `k`'s exact current candidate.
    // A heap miss while still over budget means even checkpointing every
    // prior block leaves candidate `k` oversized: no extension of the
    // donor fits, exactly. The running `plan_flops` is adjusted at every
    // flip, so the quality screen at the end costs no extra pass, and no
    // per-block division happens anywhere on this path (density orders
    // via cross-multiplication in [`DensItem`]).
    let base = profile.const_bytes + profile.input_bytes;
    // Start from the donor's mask wholesale (one memcpy): the sweep below
    // only ever flips indices *behind* its cursor, so reading `ckpt[k]` at
    // step `k` still yields the donor's bit — no per-block copy needed.
    let mut ckpt = donor.as_mask().to_vec();
    let mut total_act = 0usize;
    // One unconditional FLOPs chain plus two rare-branch corrections keep
    // the loop's float latency at a single add per block: the screen's
    // act>0 total is `all − zeroact`, and the plan's recompute cost is
    // `all − nonckpt` (fit flips shrink `nonckpt`, trim sheds grow it).
    // Likewise `Σ out` is never accumulated — it falls out of the sweep's
    // final residency `s = base + Σ out + Σ_{non-donor} act` and the
    // rare-branch `nonckpt_act`.
    let mut all_flops = 0.0f64;
    let mut all_flops_odd = 0.0f64;
    let mut zeroact_flops = 0.0f64;
    let mut nonckpt_flops = 0.0f64;
    let mut nonckpt_act = 0usize;
    // Sound *upper* bound on the max recompute density, tracked without
    // any per-block multiply or divide: `max_flops / min_act ≥ max(f/a)`.
    // A looser bound only sends more borderline repairs to the exact
    // fallback; it never accepts anything the exact gate would not.
    let mut max_flops = 0.0f64;
    let mut min_act_all = usize::MAX;
    let mut avail: std::collections::BinaryHeap<std::cmp::Reverse<DensItem>> =
        std::collections::BinaryHeap::new();
    let mut s = base;
    let mut reduced = 0usize;
    let mut peak = base; // running peak of the fitted plan
    for (k, b) in profile.blocks.iter().enumerate() {
        let donor_bit = ckpt[k];
        if k & 1 == 0 {
            all_flops += b.fwd_flops;
        } else {
            all_flops_odd += b.fwd_flops;
        }
        if b.act_bytes > 0 {
            total_act += b.act_bytes;
            max_flops = max_flops.max(b.fwd_flops);
            min_act_all = min_act_all.min(b.act_bytes);
        } else {
            zeroact_flops += b.fwd_flops;
        }
        let cand = s + b.act_bytes + 2 * b.out_bytes + b.in_bytes;
        while cand - reduced > budget {
            let std::cmp::Reverse(item) = avail.pop()?;
            ckpt[item.i as usize] = true;
            reduced += item.act;
            nonckpt_flops -= item.flops;
        }
        peak = peak.max(cand - reduced);
        s += b.out_bytes;
        if !donor_bit {
            s += b.act_bytes;
            nonckpt_flops += b.fwd_flops;
            nonckpt_act += b.act_bytes;
            if b.act_bytes > 0 {
                avail.push(std::cmp::Reverse(DensItem {
                    flops: b.fwd_flops,
                    act: b.act_bytes,
                    i: k as u32,
                }));
            }
        }
    }
    // The sweep kept every candidate ≤ budget; only constant-plus-input
    // pressure alone (no blocks to sweep, or `base > budget`) can be left
    // over, and checkpointing cannot shed it.
    if peak > budget {
        return None;
    }

    // Phase 2 — trim. Un-checkpointing block `i` raises candidates after
    // `i` by exactly `act_i` and touches nothing else, so:
    //  * the last block never raises any candidate — always shed it;
    //  * any block with `act ≤ budget − peak` sheds safely, charging the
    //    slack conservatively (the true raise can be smaller).
    // Candidates come highest density first from a max-heap; the loop
    // stops as soon as the slack cannot cover the cheapest remaining
    // activation, so tight budgets trim in O(L) heap build + O(1) pops.
    if n > 0 && ckpt[n - 1] {
        ckpt[n - 1] = false;
        nonckpt_flops += profile.blocks[n - 1].fwd_flops;
    }
    // `min_act_all` lower-bounds every checkpointed activation, so when
    // the slack cannot even cover it no shed is possible and the common
    // tight-budget case skips the scan below entirely.
    let mut slack = budget - peak;
    if n > 0 && slack >= min_act_all {
        let mut min_act_ckpt = usize::MAX;
        let mut heap_src: Vec<DensItem> = Vec::with_capacity(n);
        for (i, b) in profile.blocks[..n - 1].iter().enumerate() {
            if ckpt[i] && b.act_bytes > 0 {
                min_act_ckpt = min_act_ckpt.min(b.act_bytes);
                heap_src.push(DensItem {
                    flops: b.fwd_flops,
                    act: b.act_bytes,
                    i: i as u32,
                });
            }
        }
        if slack >= min_act_ckpt {
            let mut heap = std::collections::BinaryHeap::from(heap_src);
            while slack >= min_act_ckpt {
                let Some(item) = heap.pop() else { break };
                if item.act <= slack {
                    ckpt[item.i as usize] = false;
                    slack -= item.act;
                    nonckpt_flops += item.flops;
                }
            }
        }
    }

    // Quality gate: accept only near-lower-bound repairs, so an accepted
    // repair is provably within the ratio of the cold solve too. The
    // cheap screen bounds the coverable FLOPs by `free bytes × max
    // density` using the incrementally-tracked plan cost; only when it
    // cannot certify does the exact path run — an exact re-sum of the
    // plan's FLOPs (the tracked value can carry float drift after many
    // flips) against the exact fractional covering bound (one sort).
    let all_flops = all_flops + all_flops_odd;
    let plan_flops = all_flops - nonckpt_flops;
    let total_flops = all_flops - zeroact_flops;
    // `s` ended at `base + Σ out + Σ_{non-donor} act`, so the forward-end
    // residency `base + Σ out + Σ act` is `s` plus the donor-checkpointed
    // activation — no `Σ out` accumulator needed in the sweep.
    let fwd_end = s - nonckpt_act + total_act;
    let excess = fwd_end.saturating_sub(budget);
    let free = total_act.saturating_sub(excess) as f64;
    let dens_ub = if min_act_all == usize::MAX {
        0.0
    } else {
        max_flops / min_act_all as f64
    };
    let lb_screen = total_flops - free * dens_ub;
    if plan_flops > cfg.max_quality_ratio * lb_screen {
        let exact: f64 = profile
            .blocks
            .iter()
            .zip(&ckpt)
            .filter(|&(_, &c)| c)
            .map(|(b, _)| b.fwd_flops)
            .sum();
        let lb = covering_flop_lower_bound(profile, budget);
        if exact > cfg.max_quality_ratio * lb {
            return None;
        }
    }

    Some(CheckpointPlan::from_mask(ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use mimose_planner::memory_model::peak_bytes;
    use mimose_planner::ResidencyModel;

    /// A synthetic transformer-ish profile: uniform blocks with one
    /// attention-style activation spike.
    fn profile(l: usize, scale: usize) -> ModelProfile {
        use mimose_models::{BlockProfile, ModelInput};
        let blocks = (0..l)
            .map(|i| {
                let spike = if i == l / 8 { 4 } else { 1 };
                BlockProfile {
                    name: format!("b{i}"),
                    stage: 0,
                    index: i,
                    act_bytes: scale * 1024 * spike,
                    out_bytes: scale * 256,
                    in_bytes: scale * 256,
                    fwd_flops: 1e9 * spike as f64,
                    bwd_flops: 2e9,
                    fwd_bytes_moved: scale * 2048,
                    tensors: Vec::new(),
                }
            })
            .collect();
        ModelProfile {
            model: "synthetic".into(),
            input: ModelInput::tokens(1, scale),
            input_size: scale,
            blocks,
            const_bytes: 1 << 20,
            param_count: 0,
            input_bytes: scale * 512,
        }
    }

    fn tight_budget(p: &ModelProfile) -> usize {
        let n = p.blocks.len();
        let lo = peak_bytes(p, &CheckpointPlan::all(n));
        let hi = peak_bytes(p, &CheckpointPlan::none(n));
        lo + (hi - lo) / 256
    }

    #[test]
    fn repair_fits_a_grown_profile_from_a_smaller_donor() {
        let donor_p = profile(64, 100);
        let new_p = profile(64, 110);
        let budget = tight_budget(&new_p);
        // Donor: a plan that fit the *smaller* profile under its budget.
        let donor = {
            let b = tight_budget(&donor_p);
            crate::GreedyBucketScheduler::new(0.1).schedule(&donor_p, b)
        };
        let repaired =
            repair_plan(&new_p, &donor, budget, &RepairConfig::default()).expect("repair must fit");
        assert!(peak_bytes(&new_p, &repaired) <= budget);
    }

    #[test]
    fn repair_trims_a_shrunk_profile_and_meets_the_bound() {
        let donor_p = profile(64, 110);
        let new_p = profile(64, 100);
        let budget = tight_budget(&new_p);
        let donor = {
            let b = tight_budget(&donor_p);
            crate::GreedyBucketScheduler::new(0.1).schedule(&donor_p, b)
        };
        let repaired =
            repair_plan(&new_p, &donor, budget, &RepairConfig::default()).expect("repair must fit");
        assert!(peak_bytes(&new_p, &repaired) <= budget);
        let m = ResidencyModel::from_plan(&new_p, &repaired);
        let lb = covering_flop_lower_bound(&new_p, budget);
        assert!(m.recompute_flops() <= 1.10 * lb + 1.0);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let p = profile(32, 100);
        // Below even the all-checkpoint floor: nothing can fit.
        let floor = peak_bytes(&p, &CheckpointPlan::all(32));
        let donor = CheckpointPlan::none(32);
        assert!(repair_plan(&p, &donor, floor / 2, &RepairConfig::default()).is_none());
    }

    #[test]
    fn mismatched_block_count_returns_none() {
        let p = profile(32, 100);
        let donor = CheckpointPlan::none(16);
        assert!(repair_plan(&p, &donor, usize::MAX, &RepairConfig::default()).is_none());
    }

    #[test]
    fn lower_bound_is_zero_when_unconstrained_fits() {
        let p = profile(32, 100);
        assert_eq!(covering_flop_lower_bound(&p, usize::MAX), 0.0);
        // And a roomy budget repairs to the empty plan (zero recompute).
        let donor = CheckpointPlan::all(32);
        let repaired = repair_plan(&p, &donor, usize::MAX, &RepairConfig::default()).unwrap();
        assert_eq!(repaired.count(), 0);
    }

    #[test]
    fn lower_bound_is_monotone_in_budget_pressure() {
        let p = profile(64, 100);
        let n = p.blocks.len();
        let lo = peak_bytes(&p, &CheckpointPlan::all(n));
        let hi = peak_bytes(&p, &CheckpointPlan::none(n));
        let tight = covering_flop_lower_bound(&p, lo + (hi - lo) / 256);
        let loose = covering_flop_lower_bound(&p, lo + (hi - lo) / 2);
        assert!(tight > loose);
        assert!(loose > 0.0);
    }
}
