//! Deterministic pseudo-randomness for the Mimose simulator.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! this crate provides the (small) slice of the `rand`/`rand_distr` API the
//! workspace actually uses: a seedable generator, uniform ranges, and
//! normal/log-normal distributions. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms, so seeded experiment runs
//! and property tests are reproducible bit for bit.

/// Low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the seed into the full state; it cannot produce
        // the all-zero state xoshiro must avoid.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a generator (the `rng.gen()` surface).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the `rng.gen_range(a..b)` surface).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty range");
    // Widening-multiply method (Lemire) without the rejection step; the bias
    // is < 2^-64 per draw — irrelevant for simulation workloads.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (for `f64`: `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions samplable given a generator.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError(&'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistError {}

/// Normal distribution `N(mean, std_dev²)` sampled via Box-Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError("std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; u1 is kept away from 0 so ln() stays finite.
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = f64::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Construct from the mean/std-dev of the underlying normal (of ln x).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5usize..=8);
            assert!((5..=8).contains(&y));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = StdRng::seed_from_u64(2);
        let xs: Vec<usize> = (0..2000).map(|_| r.gen_range(0usize..=3)).collect();
        for v in 0..=3 {
            assert!(xs.contains(&v), "missing {v}");
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let mut r = StdRng::seed_from_u64(4);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let mut r = StdRng::seed_from_u64(5);
        let d = LogNormal::new(3.0, 0.7).unwrap();
        let mut xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean > median, "log-normal mean {mean} <= median {median}");
        assert!((median - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.05);
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
