//! Tensor shapes.
//!
//! Shapes in the simulator are small (rank ≤ 5 in every model the paper
//! evaluates), so they are stored inline in a fixed array to avoid a heap
//! allocation per intermediate tensor — shape arithmetic is on the planner's
//! critical path (the "lightning" estimator must run in sub-millisecond time).

/// Maximum rank supported by the inline representation.
pub const MAX_RANK: usize = 6;

/// A tensor shape with inline dimension storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Build a shape from a dimension slice.
    ///
    /// # Panics
    /// Panics if `dims.len() > MAX_RANK`.
    #[inline]
    #[must_use]
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// A scalar (rank-0) shape.
    #[inline]
    #[must_use]
    pub fn scalar() -> Self {
        Shape::new(&[])
    }

    /// Dimensions as a slice.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions.
    #[inline]
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements (product of dims, 1 for scalars).
    #[inline]
    #[must_use]
    pub fn elems(&self) -> usize {
        self.dims().iter().product()
    }

    /// Dimension at `idx` counted from the back (`back(0)` is the last dim).
    ///
    /// # Panics
    /// Panics if `idx >= rank`.
    #[inline]
    #[must_use]
    pub fn back(&self, idx: usize) -> usize {
        let r = self.rank();
        assert!(idx < r, "back({idx}) out of range for rank {r}");
        self.dims[r - 1 - idx]
    }

    /// Returns a copy with the trailing dimension replaced.
    #[inline]
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when called on a scalar (rank-0) shape.
    pub fn with_last(&self, dim: usize) -> Self {
        let mut out = *self;
        let r = self.rank();
        assert!(r > 0, "with_last on scalar shape");
        out.dims[r - 1] = dim;
        out
    }

    /// Returns a copy with one more trailing dimension appended.
    #[inline]
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when the shape is already at `MAX_RANK`.
    pub fn push_back(&self, dim: usize) -> Self {
        let r = self.rank();
        assert!(r < MAX_RANK, "push_back beyond MAX_RANK");
        let mut out = *self;
        out.dims[r] = dim;
        out.rank += 1;
        out
    }

    /// Returns a copy with the trailing dimension removed.
    #[inline]
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when called on a scalar (rank-0) shape.
    pub fn pop_back(&self) -> Self {
        let r = self.rank();
        assert!(r > 0, "pop_back on scalar shape");
        let mut out = *self;
        out.dims[r - 1] = 0;
        out.rank -= 1;
        out
    }

    /// Elementwise-compatibility check (exact match; the simulator does not
    /// model broadcasting beyond identical shapes since every graph we build
    /// uses explicit shapes).
    #[inline]
    #[must_use]
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(d: [usize; N]) -> Self {
        Shape::new(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).elems(), 24);
        assert_eq!(Shape::scalar().elems(), 1);
        assert_eq!(Shape::new(&[0, 5]).elems(), 0);
    }

    #[test]
    fn back_indexing() {
        let s = Shape::new(&[8, 128, 768]);
        assert_eq!(s.back(0), 768);
        assert_eq!(s.back(1), 128);
        assert_eq!(s.back(2), 8);
    }

    #[test]
    fn with_last_replaces_trailing() {
        let s = Shape::new(&[8, 128, 768]);
        assert_eq!(s.with_last(3072).dims(), &[8, 128, 3072]);
    }

    #[test]
    fn push_pop_roundtrip() {
        let s = Shape::new(&[4, 4]);
        let pushed = s.push_back(9);
        assert_eq!(pushed.dims(), &[4, 4, 9]);
        assert_eq!(pushed.pop_back(), s);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn overly_deep_shape_panics() {
        let _ = Shape::new(&[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
