//! Tensor metadata: the (shape, dtype) pair every cost model works over.

use crate::{DType, Shape};

/// Metadata of a simulated tensor. No element data is ever stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorMeta {
    /// Logical shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
}

impl TensorMeta {
    /// Construct from a shape and dtype.
    #[inline]
    pub fn new(shape: impl Into<Shape>, dtype: DType) -> Self {
        TensorMeta {
            shape: shape.into(),
            dtype,
        }
    }

    /// f32 tensor — the common case for activations.
    #[inline]
    pub fn f32(shape: impl Into<Shape>) -> Self {
        TensorMeta::new(shape, DType::F32)
    }

    /// Number of elements.
    #[inline]
    #[must_use]
    pub fn elems(&self) -> usize {
        self.shape.elems()
    }

    /// Storage footprint in bytes (unaligned; allocator alignment is applied
    /// by the memory simulator, not here).
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.elems() * self.dtype.size_bytes()
    }
}

impl std::fmt::Display for TensorMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.dtype, self.shape)
    }
}

/// Round `bytes` up to the allocator block granularity used by the CUDA
/// caching allocator (512 B), which the paper's memory numbers implicitly
/// include.
#[inline]
#[must_use]
pub fn aligned_bytes(bytes: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (bytes + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_scale_with_dtype() {
        let s = Shape::new(&[32, 128]);
        assert_eq!(TensorMeta::new(s, DType::F32).bytes(), 32 * 128 * 4);
        assert_eq!(TensorMeta::new(s, DType::F16).bytes(), 32 * 128 * 2);
        assert_eq!(TensorMeta::new(s, DType::I64).bytes(), 32 * 128 * 8);
    }

    #[test]
    fn alignment_rounds_up() {
        assert_eq!(aligned_bytes(1, 512), 512);
        assert_eq!(aligned_bytes(512, 512), 512);
        assert_eq!(aligned_bytes(513, 512), 1024);
        assert_eq!(aligned_bytes(0, 512), 0);
    }

    #[test]
    fn display_includes_dtype_and_shape() {
        let t = TensorMeta::f32([2, 2]);
        assert_eq!(t.to_string(), "f32[2x2]");
    }
}
