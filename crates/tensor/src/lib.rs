//! # mimose-tensor
//!
//! Shape/dtype substrate for the Mimose reproduction. The training simulator
//! never materialises tensor *data* — every subsystem (cost model, memory
//! planner, allocator) operates on `(shape, dtype)` metadata only, which is
//! exactly the information the paper's planners consume.

#![warn(missing_docs)]

mod dtype;
mod meta;
mod shape;

pub use dtype::DType;
pub use meta::{aligned_bytes, TensorMeta};
pub use shape::{Shape, MAX_RANK};
