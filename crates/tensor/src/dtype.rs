//! Element datatypes and their storage widths.

/// Element type of a simulated tensor.
///
/// Only the storage width matters for the memory planner; no numeric data is
/// ever materialised in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 float (the default training dtype in the paper).
    F32,
    /// 16-bit IEEE-754 float.
    F16,
    /// bfloat16.
    BF16,
    /// 64-bit signed integer (token ids, index tensors).
    I64,
    /// 32-bit signed integer.
    I32,
    /// Unsigned byte (dropout masks and similar).
    U8,
    /// Boolean stored as one byte (attention masks).
    Bool,
}

impl DType {
    /// Storage width of one element in bytes.
    #[inline]
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::I64 => 8,
            DType::U8 | DType::Bool => 1,
        }
    }

    /// True for floating-point types.
    #[inline]
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16 | DType::BF16)
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::U8 => "u8",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_ieee() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn float_classification() {
        assert!(DType::F32.is_float());
        assert!(DType::BF16.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::Bool.is_float());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::Bool.to_string(), "bool");
    }
}
