//! Fleet reporting: per-job and per-device rollups plus the
//! [`ClusterReport`] with its deterministic JSON encoding (stable field
//! order, integral counters, fixed-precision floats — two runs with the
//! same seed serialize byte-identically).

use crate::admission::AdmissionStats;
use mimose_planner::PlanTierStats;

/// How a job's cluster run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran every requested iteration.
    Completed,
    /// No device in the pool could ever admit it.
    Rejected,
    /// Aborted mid-run on a typed executor error.
    Failed(String),
}

impl JobOutcome {
    /// Stable lowercase tag for serialization.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Rejected => "rejected",
            JobOutcome::Failed(_) => "failed",
        }
    }
}

/// One job's rollup.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Policy display name.
    pub policy: String,
    /// Device index the job ran on (`None` when rejected).
    pub device: Option<usize>,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// Whether admission dispatched it with demotion armed.
    pub demoted: bool,
    /// Iterations executed.
    pub iters: usize,
    /// Cluster virtual time at dispatch (time spent queued).
    pub queue_wait_ns: u64,
    /// Summed iteration time.
    pub total_ns: u64,
    /// Highest peak residency over the run.
    pub max_peak_bytes: usize,
    /// Iterations ending in unrecovered OOM.
    pub oom_iters: usize,
    /// Iterations rescued by the recovery ladder.
    pub recovered_iters: usize,
    /// Recovery-ladder rungs taken.
    pub recovery_events: usize,
    /// Mimose shuttle (collection) iterations.
    pub shuttle_iters: usize,
    /// Planning-tier ladder counters (certified hit → cached hit → repair
    /// → cold solve) for runtime planners; `None` for static policies.
    pub plan_tiers: Option<PlanTierStats>,
}

/// One device's rollup.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device index in the pool.
    pub index: usize,
    /// Arena capacity in bytes.
    pub capacity_bytes: usize,
    /// Virtual nanoseconds the device spent executing iterations.
    pub busy_ns: u64,
    /// Jobs that ran to their end (completion or failure) here.
    pub jobs_run: usize,
    /// Iterations executed here.
    pub iters: usize,
}

/// The whole fleet's rollup.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Dispatch policy name.
    pub schedule: String,
    /// BSP rounds executed.
    pub rounds: usize,
    /// Virtual time at which the last device went idle.
    pub makespan_ns: u64,
    /// Summed busy time across devices.
    pub busy_ns: u64,
    /// `busy / (makespan × devices)`, percent.
    pub utilization_pct: f64,
    /// Mean queue wait over dispatched jobs.
    pub mean_queue_wait_ns: u64,
    /// Worst queue wait over dispatched jobs.
    pub max_queue_wait_ns: u64,
    /// Fleet totals of the per-job OOM/recovery counters.
    pub oom_iters: usize,
    /// Iterations rescued by the ladder, fleet-wide.
    pub recovered_iters: usize,
    /// Recovery rungs taken, fleet-wide.
    pub recovery_events: usize,
    /// Admission outcomes and prediction quality.
    pub admission: AdmissionStats,
    /// Per-device rollups, in index order.
    pub devices: Vec<DeviceReport>,
    /// Per-job rollups, in submission order.
    pub jobs: Vec<JobReport>,
}

fn push_kv_u(out: &mut String, key: &str, v: u128, comma: bool) {
    out.push_str(&format!("\"{key}\":{v}"));
    if comma {
        out.push(',');
    }
}

fn push_kv_f(out: &mut String, key: &str, v: f64, comma: bool) {
    out.push_str(&format!("\"{key}\":{v:.4}"));
    if comma {
        out.push(',');
    }
}

fn push_kv_s(out: &mut String, key: &str, v: &str, comma: bool) {
    // Names here are identifier-like; escape the two JSON-critical chars
    // anyway so arbitrary job names stay well-formed.
    let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
    out.push_str(&format!("\"{key}\":\"{escaped}\""));
    if comma {
        out.push(',');
    }
}

impl ClusterReport {
    /// Deterministic JSON encoding (see module docs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push('{');
        push_kv_s(&mut o, "schedule", &self.schedule, true);
        push_kv_u(&mut o, "rounds", self.rounds as u128, true);
        push_kv_u(&mut o, "makespan_ns", self.makespan_ns as u128, true);
        push_kv_u(&mut o, "busy_ns", self.busy_ns as u128, true);
        push_kv_f(&mut o, "utilization_pct", self.utilization_pct, true);
        push_kv_u(
            &mut o,
            "mean_queue_wait_ns",
            self.mean_queue_wait_ns as u128,
            true,
        );
        push_kv_u(
            &mut o,
            "max_queue_wait_ns",
            self.max_queue_wait_ns as u128,
            true,
        );
        push_kv_u(&mut o, "oom_iters", self.oom_iters as u128, true);
        push_kv_u(
            &mut o,
            "recovered_iters",
            self.recovered_iters as u128,
            true,
        );
        push_kv_u(
            &mut o,
            "recovery_events",
            self.recovery_events as u128,
            true,
        );

        o.push_str("\"admission\":{");
        let a = &self.admission;
        push_kv_u(&mut o, "admitted", a.admitted as u128, true);
        push_kv_u(&mut o, "verified_admits", a.verified_admits as u128, true);
        push_kv_u(&mut o, "demoted", a.demoted as u128, true);
        push_kv_u(&mut o, "rejected", a.rejected as u128, true);
        push_kv_u(&mut o, "deferred_rounds", a.deferred_rounds as u128, true);
        push_kv_u(&mut o, "predictions", a.predictions as u128, true);
        push_kv_u(&mut o, "within_10pct", a.within_10pct as u128, true);
        push_kv_f(
            &mut o,
            "mean_abs_rel_err_pct",
            a.mean_abs_rel_err_pct(),
            false,
        );
        o.push_str("},");

        o.push_str("\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            o.push('{');
            push_kv_u(&mut o, "index", d.index as u128, true);
            push_kv_u(&mut o, "capacity_bytes", d.capacity_bytes as u128, true);
            push_kv_u(&mut o, "busy_ns", d.busy_ns as u128, true);
            push_kv_u(&mut o, "jobs_run", d.jobs_run as u128, true);
            push_kv_u(&mut o, "iters", d.iters as u128, false);
            o.push('}');
            if i + 1 < self.devices.len() {
                o.push(',');
            }
        }
        o.push_str("],");

        o.push_str("\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            o.push('{');
            push_kv_s(&mut o, "name", &j.name, true);
            push_kv_s(&mut o, "policy", &j.policy, true);
            match j.device {
                Some(d) => push_kv_u(&mut o, "device", d as u128, true),
                None => {
                    o.push_str("\"device\":null,");
                }
            }
            push_kv_s(&mut o, "outcome", j.outcome.tag(), true);
            o.push_str(&format!("\"demoted\":{},", j.demoted));
            push_kv_u(&mut o, "iters", j.iters as u128, true);
            push_kv_u(&mut o, "queue_wait_ns", j.queue_wait_ns as u128, true);
            push_kv_u(&mut o, "total_ns", j.total_ns as u128, true);
            push_kv_u(&mut o, "max_peak_bytes", j.max_peak_bytes as u128, true);
            push_kv_u(&mut o, "oom_iters", j.oom_iters as u128, true);
            push_kv_u(&mut o, "recovered_iters", j.recovered_iters as u128, true);
            push_kv_u(&mut o, "recovery_events", j.recovery_events as u128, true);
            push_kv_u(&mut o, "shuttle_iters", j.shuttle_iters as u128, true);
            match &j.plan_tiers {
                Some(t) => {
                    o.push_str("\"plan_tiers\":{");
                    push_kv_u(&mut o, "certified_hits", u128::from(t.certified_hits), true);
                    push_kv_u(&mut o, "cache_hits", u128::from(t.cache_hits), true);
                    push_kv_u(&mut o, "repaired_plans", u128::from(t.repaired_plans), true);
                    push_kv_u(&mut o, "cold_solves", u128::from(t.cold_solves), false);
                    o.push('}');
                }
                None => o.push_str("\"plan_tiers\":null"),
            }
            o.push('}');
            if i + 1 < self.jobs.len() {
                o.push(',');
            }
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escapes_names() {
        let report = ClusterReport {
            schedule: "fifo".into(),
            rounds: 2,
            makespan_ns: 100,
            busy_ns: 90,
            utilization_pct: 45.0,
            mean_queue_wait_ns: 5,
            max_queue_wait_ns: 10,
            oom_iters: 0,
            recovered_iters: 0,
            recovery_events: 0,
            admission: AdmissionStats::default(),
            devices: vec![DeviceReport {
                index: 0,
                capacity_bytes: 16,
                busy_ns: 90,
                jobs_run: 1,
                iters: 2,
            }],
            jobs: vec![JobReport {
                name: "job \"a\"".into(),
                policy: "Baseline".into(),
                device: Some(0),
                outcome: JobOutcome::Completed,
                demoted: false,
                iters: 2,
                queue_wait_ns: 0,
                total_ns: 90,
                max_peak_bytes: 8,
                oom_iters: 0,
                recovered_iters: 0,
                recovery_events: 0,
                shuttle_iters: 0,
                plan_tiers: Some(PlanTierStats {
                    certified_hits: 3,
                    cache_hits: 1,
                    repaired_plans: 2,
                    cold_solves: 1,
                }),
            }],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schedule\":\"fifo\""));
        assert!(a.contains("job \\\"a\\\""));
        assert!(a.contains("\"utilization_pct\":45.0000"));
        assert!(a.contains(
            "\"plan_tiers\":{\"certified_hits\":3,\"cache_hits\":1,\
             \"repaired_plans\":2,\"cold_solves\":1}"
        ));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }
}
