//! Fleet reporting: per-job and per-device rollups, SLO tail percentiles,
//! plus the [`ClusterReport`] with its deterministic JSON encoding (stable
//! field order, integral counters, fixed-precision floats — two runs with
//! the same seed serialize byte-identically).

use crate::admission::AdmissionStats;
use crate::events::{FleetEvent, FleetEventKind};
use mimose_chaos::FleetFaultPlan;
use mimose_data::ArrivalProcess;
use mimose_planner::PlanTierStats;

/// How a job's cluster run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran every requested iteration on one device.
    Completed,
    /// Ran every requested iteration, surviving at least one device loss
    /// via checkpointed migration.
    Migrated,
    /// No device in the pool could ever admit it.
    Rejected,
    /// Explicitly dropped by fleet load shedding: after device loss, no
    /// surviving device could ever hold it, the whole pool died, or (in
    /// event-driven mode) the bounded queue was full on arrival.
    Shed(String),
    /// Aborted mid-run on a typed executor error, or displaced past the
    /// retry budget.
    Failed(String),
}

impl JobOutcome {
    /// Stable lowercase tag for serialization.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Migrated => "migrated",
            JobOutcome::Rejected => "rejected",
            JobOutcome::Shed(_) => "shed",
            JobOutcome::Failed(_) => "failed",
        }
    }

    /// True when the job executed every requested iteration (with or
    /// without migrating).
    #[must_use]
    pub fn finished(&self) -> bool {
        matches!(self, JobOutcome::Completed | JobOutcome::Migrated)
    }
}

/// One contiguous span of a job's execution on one device. A job that
/// never migrates has exactly one placement; each migration opens a new
/// one. Placements let the audit layer re-derive per-device busy time and
/// iteration counts even when jobs move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPlacement {
    /// Device the span ran on.
    pub device: usize,
    /// Virtual nanoseconds of iteration time executed in the span.
    pub busy_ns: u64,
    /// Iterations executed in the span.
    pub iters: usize,
}

/// Fleet-level fault-tolerance rollup: what the failure protocol did,
/// re-derivable from the [`FleetEvent`] chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Devices that were permanently lost during the run.
    pub devices_lost: usize,
    /// Jobs checkpointed off a dying device.
    pub checkpoints: usize,
    /// Checkpointed jobs successfully resumed on a surviving device.
    pub migrations: usize,
    /// Jobs explicitly shed because the degraded pool could never place
    /// them (or their arrival overflowed the bounded queue).
    pub shed_jobs: usize,
    /// Jobs that ended in failure (executor errors or retry exhaustion).
    pub failed_jobs: usize,
    /// The retry budget displaced jobs were bounded by.
    pub max_retries: usize,
    /// Total modeled checkpoint/restore overhead, virtual nanoseconds
    /// (accounted per job, separate from device busy time).
    pub overhead_ns: u64,
}

/// Nearest-rank percentile over an unsorted sample: the smallest element
/// such that at least `p`% of the sample is ≤ it. Returns 0 for an empty
/// sample. `p` is in (0, 100].
fn percentile(xs: &[u64], p: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Service-level rollup: queue-wait and iteration-latency tail
/// percentiles, goodput, and rejection/shed rates. Folded identically in
/// both modes from the per-job rows, and re-derived independently by the
/// audit layer from the same rows — a quoted tail can never drift from
/// the evidence behind it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloRollup {
    /// Median queue wait over dispatched jobs, virtual nanoseconds.
    pub queue_wait_p50_ns: u64,
    /// 95th-percentile queue wait (nearest rank).
    pub queue_wait_p95_ns: u64,
    /// 99th-percentile queue wait (nearest rank).
    pub queue_wait_p99_ns: u64,
    /// Median per-iteration latency over every executed iteration.
    pub iter_latency_p50_ns: u64,
    /// 95th-percentile iteration latency (nearest rank).
    pub iter_latency_p95_ns: u64,
    /// 99th-percentile iteration latency (nearest rank).
    pub iter_latency_p99_ns: u64,
    /// Iterations executed by jobs that finished (completed or migrated):
    /// work the fleet delivered, not just attempted.
    pub goodput_iters: usize,
    /// `goodput_iters` per virtual second of makespan.
    pub goodput_iters_per_s: f64,
    /// Jobs admission rejected outright.
    pub rejected_jobs: usize,
    /// Jobs the fleet shed (degraded pool or full queue).
    pub shed_jobs: usize,
    /// Jobs that failed mid-run.
    pub failed_jobs: usize,
    /// `rejected_jobs` as a percentage of submissions.
    pub rejection_rate_pct: f64,
    /// `shed_jobs` as a percentage of submissions.
    pub shed_rate_pct: f64,
}

impl SloRollup {
    /// Fold the rollup from per-job rows plus the flat list of every
    /// executed iteration's latency. Queue waits count only jobs that
    /// actually dispatched (`device` set); goodput counts only iterations
    /// of jobs that finished.
    #[must_use]
    pub fn fold(jobs: &[JobReport], iter_latencies: &[u64], makespan_ns: u64) -> SloRollup {
        let waits: Vec<u64> = jobs
            .iter()
            .filter(|j| j.device.is_some())
            .map(|j| j.queue_wait_ns)
            .collect();
        let goodput_iters: usize = jobs
            .iter()
            .filter(|j| j.outcome.finished())
            .map(|j| j.iters)
            .sum();
        let goodput_iters_per_s = if makespan_ns > 0 {
            goodput_iters as f64 / (makespan_ns as f64 / 1e9)
        } else {
            0.0
        };
        let rejected_jobs = jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Rejected)
            .count();
        let shed_jobs = jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Shed(_)))
            .count();
        let failed_jobs = jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
            .count();
        let rate = |n: usize| {
            if jobs.is_empty() {
                0.0
            } else {
                n as f64 / jobs.len() as f64 * 100.0
            }
        };
        SloRollup {
            queue_wait_p50_ns: percentile(&waits, 50.0),
            queue_wait_p95_ns: percentile(&waits, 95.0),
            queue_wait_p99_ns: percentile(&waits, 99.0),
            iter_latency_p50_ns: percentile(iter_latencies, 50.0),
            iter_latency_p95_ns: percentile(iter_latencies, 95.0),
            iter_latency_p99_ns: percentile(iter_latencies, 99.0),
            goodput_iters,
            goodput_iters_per_s,
            rejected_jobs,
            shed_jobs,
            failed_jobs,
            rejection_rate_pct: rate(rejected_jobs),
            shed_rate_pct: rate(shed_jobs),
        }
    }
}

/// One job's rollup.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Policy display name.
    pub policy: String,
    /// The policy's memory budget in bytes (`None` for the unconstrained
    /// baseline) — the knob behind the policy name, echoed so report rows
    /// are self-describing.
    pub budget_bytes: Option<usize>,
    /// Device index the job ran on (`None` when rejected).
    pub device: Option<usize>,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// Whether admission dispatched it with demotion armed.
    pub demoted: bool,
    /// Iterations executed.
    pub iters: usize,
    /// Virtual instant the job entered the fleet (always 0 in BSP mode).
    pub arrival_ns: u64,
    /// Time spent queued: dispatch instant minus arrival instant.
    pub queue_wait_ns: u64,
    /// Virtual instant the job's last iteration completed (`None` in BSP
    /// mode, and for jobs that never finished).
    pub finish_ns: Option<u64>,
    /// Summed iteration time.
    pub total_ns: u64,
    /// Highest peak residency over the run.
    pub max_peak_bytes: usize,
    /// Iterations ending in unrecovered OOM.
    pub oom_iters: usize,
    /// Iterations rescued by the recovery ladder.
    pub recovered_iters: usize,
    /// Recovery-ladder rungs taken.
    pub recovery_events: usize,
    /// Mimose shuttle (collection) iterations.
    pub shuttle_iters: usize,
    /// Planning-tier ladder counters (certified hit → cached hit → repair
    /// → cold solve) for runtime planners; `None` for static policies.
    pub plan_tiers: Option<PlanTierStats>,
    /// Successful checkpoint-and-resume moves between devices.
    pub migrations: usize,
    /// Times the job was displaced off a dying device (bounded by the
    /// spec's retry budget).
    pub retries: usize,
    /// Modeled checkpoint/restore overhead attributed to this job,
    /// virtual nanoseconds (separate from device busy time).
    pub fleet_overhead_ns: u64,
    /// The policy's predicted first-iteration peak over the raw
    /// (pre-pass) graph — what admission would have gated on without
    /// the optimization pipeline (`None` when the job never profiled).
    pub graph_raw_peak_bytes: Option<usize>,
    /// The same prediction over the optimized graph, the number
    /// admission actually gated on; the gap to `graph_raw_peak_bytes`
    /// is the pass pipeline's credit.
    pub graph_opt_peak_bytes: Option<usize>,
    /// Why admission demoted or rejected the job (`None` for a plain
    /// admit); the first non-trivial decision the job received.
    pub admission_reason: Option<String>,
    /// Per-device execution spans, in execution order (empty when the
    /// job never dispatched).
    pub placements: Vec<JobPlacement>,
}

/// One device's rollup.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device index in the pool.
    pub index: usize,
    /// Arena capacity in bytes.
    pub capacity_bytes: usize,
    /// Virtual nanoseconds the device spent executing iterations.
    pub busy_ns: u64,
    /// Jobs that ran to their end (completion or failure) here.
    pub jobs_run: usize,
    /// Iterations executed here.
    pub iters: usize,
    /// True when the fault plan permanently removed this device during
    /// the run.
    pub lost: bool,
}

/// The whole fleet's rollup.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Dispatch policy name.
    pub schedule: String,
    /// Execution mode name ("bsp" or "event-driven").
    pub mode: String,
    /// The arrival process the run executed under, embedded so the
    /// report is self-describing (always `Immediate` in BSP mode).
    pub arrivals: ArrivalProcess,
    /// BSP rounds (or event-loop epochs) executed.
    pub rounds: usize,
    /// Virtual time at which the last device went idle (BSP: max device
    /// busy time; event-driven: the last fleet event's timestamp).
    pub makespan_ns: u64,
    /// Summed busy time across devices.
    pub busy_ns: u64,
    /// `busy / (makespan × devices)`, percent.
    pub utilization_pct: f64,
    /// Mean queue wait over dispatched jobs.
    pub mean_queue_wait_ns: u64,
    /// Worst queue wait over dispatched jobs.
    pub max_queue_wait_ns: u64,
    /// Fleet totals of the per-job OOM/recovery counters.
    pub oom_iters: usize,
    /// Iterations rescued by the ladder, fleet-wide.
    pub recovered_iters: usize,
    /// Recovery rungs taken, fleet-wide.
    pub recovery_events: usize,
    /// Admission outcomes and prediction quality.
    pub admission: AdmissionStats,
    /// SLO tails: queue-wait/iteration-latency percentiles, goodput, and
    /// rejection/shed rates.
    pub slo: SloRollup,
    /// Fault-tolerance rollup (all zeros on a clean run).
    pub fleet: FleetStats,
    /// The fault plan the run executed under, embedded so a gated chaos
    /// run's evidence is self-describing.
    pub fault_plan: FleetFaultPlan,
    /// The typed fleet-event chain, in observation order (empty on a
    /// clean BSP run; never empty in event-driven mode).
    pub events: Vec<FleetEvent>,
    /// Per-device rollups, in index order.
    pub devices: Vec<DeviceReport>,
    /// Per-job rollups, in submission order.
    pub jobs: Vec<JobReport>,
}

fn push_kv_u(out: &mut String, key: &str, v: u128, comma: bool) {
    out.push_str(&format!("\"{key}\":{v}"));
    if comma {
        out.push(',');
    }
}

fn push_kv_f(out: &mut String, key: &str, v: f64, comma: bool) {
    out.push_str(&format!("\"{key}\":{v:.4}"));
    if comma {
        out.push(',');
    }
}

fn push_kv_s(out: &mut String, key: &str, v: &str, comma: bool) {
    // Names here are identifier-like; escape the two JSON-critical chars
    // anyway so arbitrary job names stay well-formed.
    let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
    out.push_str(&format!("\"{key}\":\"{escaped}\""));
    if comma {
        out.push(',');
    }
}

fn push_event(o: &mut String, e: &FleetEvent) {
    o.push('{');
    push_kv_u(o, "round", e.round as u128, true);
    push_kv_u(o, "at_ns", u128::from(e.at_ns), true);
    push_kv_s(o, "kind", e.kind.tag(), true);
    match &e.kind {
        FleetEventKind::Arrive { job } => {
            push_kv_u(o, "job", *job as u128, true);
        }
        FleetEventKind::Dispatch { job, device, seq } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "device", *device as u128, true);
            push_kv_u(o, "seq", *seq as u128, true);
        }
        FleetEventKind::Complete { job, device } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "device", *device as u128, true);
        }
        FleetEventKind::DeviceDown {
            device,
            until_round,
        } => {
            push_kv_u(o, "device", *device as u128, true);
            match until_round {
                Some(r) => push_kv_u(o, "until_round", *r as u128, true),
                None => o.push_str("\"until_round\":null,"),
            }
        }
        FleetEventKind::DeviceUp { device } => {
            push_kv_u(o, "device", *device as u128, true);
        }
        FleetEventKind::Checkpoint {
            job,
            device,
            cursor,
        } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "device", *device as u128, true);
            push_kv_u(o, "cursor", *cursor as u128, true);
        }
        FleetEventKind::Requeue { job, retries } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "retries", *retries as u128, true);
        }
        FleetEventKind::Backoff { job, until_round } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "until_round", *until_round as u128, true);
        }
        FleetEventKind::Migrate {
            job,
            from,
            to,
            cursor,
            seq,
        } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_u(o, "from", *from as u128, true);
            push_kv_u(o, "to", *to as u128, true);
            push_kv_u(o, "cursor", *cursor as u128, true);
            push_kv_u(o, "seq", *seq as u128, true);
        }
        FleetEventKind::Reject { job, reason }
        | FleetEventKind::Shed { job, reason }
        | FleetEventKind::Fail { job, reason } => {
            push_kv_u(o, "job", *job as u128, true);
            push_kv_s(o, "reason", reason, true);
        }
    }
    push_kv_u(o, "cost_ns", u128::from(e.cost_ns), false);
    o.push('}');
}

impl ClusterReport {
    /// Deterministic JSON encoding (see module docs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push('{');
        push_kv_s(&mut o, "schedule", &self.schedule, true);
        push_kv_s(&mut o, "mode", &self.mode, true);
        push_kv_u(&mut o, "rounds", self.rounds as u128, true);
        push_kv_u(&mut o, "makespan_ns", self.makespan_ns as u128, true);
        push_kv_u(&mut o, "busy_ns", self.busy_ns as u128, true);
        push_kv_f(&mut o, "utilization_pct", self.utilization_pct, true);
        push_kv_u(
            &mut o,
            "mean_queue_wait_ns",
            self.mean_queue_wait_ns as u128,
            true,
        );
        push_kv_u(
            &mut o,
            "max_queue_wait_ns",
            self.max_queue_wait_ns as u128,
            true,
        );
        push_kv_u(&mut o, "oom_iters", self.oom_iters as u128, true);
        push_kv_u(
            &mut o,
            "recovered_iters",
            self.recovered_iters as u128,
            true,
        );
        push_kv_u(
            &mut o,
            "recovery_events",
            self.recovery_events as u128,
            true,
        );

        o.push_str("\"admission\":{");
        let a = &self.admission;
        push_kv_u(&mut o, "admitted", a.admitted as u128, true);
        push_kv_u(&mut o, "verified_admits", a.verified_admits as u128, true);
        push_kv_u(&mut o, "demoted", a.demoted as u128, true);
        push_kv_u(&mut o, "rejected", a.rejected as u128, true);
        push_kv_u(&mut o, "deferred_rounds", a.deferred_rounds as u128, true);
        push_kv_u(&mut o, "predictions", a.predictions as u128, true);
        push_kv_u(&mut o, "within_10pct", a.within_10pct as u128, true);
        push_kv_f(
            &mut o,
            "mean_abs_rel_err_pct",
            a.mean_abs_rel_err_pct(),
            false,
        );
        o.push_str("},");

        o.push_str("\"slo\":{");
        let s = &self.slo;
        push_kv_u(
            &mut o,
            "queue_wait_p50_ns",
            u128::from(s.queue_wait_p50_ns),
            true,
        );
        push_kv_u(
            &mut o,
            "queue_wait_p95_ns",
            u128::from(s.queue_wait_p95_ns),
            true,
        );
        push_kv_u(
            &mut o,
            "queue_wait_p99_ns",
            u128::from(s.queue_wait_p99_ns),
            true,
        );
        push_kv_u(
            &mut o,
            "iter_latency_p50_ns",
            u128::from(s.iter_latency_p50_ns),
            true,
        );
        push_kv_u(
            &mut o,
            "iter_latency_p95_ns",
            u128::from(s.iter_latency_p95_ns),
            true,
        );
        push_kv_u(
            &mut o,
            "iter_latency_p99_ns",
            u128::from(s.iter_latency_p99_ns),
            true,
        );
        push_kv_u(&mut o, "goodput_iters", s.goodput_iters as u128, true);
        push_kv_f(&mut o, "goodput_iters_per_s", s.goodput_iters_per_s, true);
        push_kv_u(&mut o, "rejected_jobs", s.rejected_jobs as u128, true);
        push_kv_u(&mut o, "shed_jobs", s.shed_jobs as u128, true);
        push_kv_u(&mut o, "failed_jobs", s.failed_jobs as u128, true);
        push_kv_f(&mut o, "rejection_rate_pct", s.rejection_rate_pct, true);
        push_kv_f(&mut o, "shed_rate_pct", s.shed_rate_pct, false);
        o.push_str("},");

        o.push_str("\"fleet\":{");
        let f = &self.fleet;
        push_kv_u(&mut o, "devices_lost", f.devices_lost as u128, true);
        push_kv_u(&mut o, "checkpoints", f.checkpoints as u128, true);
        push_kv_u(&mut o, "migrations", f.migrations as u128, true);
        push_kv_u(&mut o, "shed_jobs", f.shed_jobs as u128, true);
        push_kv_u(&mut o, "failed_jobs", f.failed_jobs as u128, true);
        push_kv_u(&mut o, "max_retries", f.max_retries as u128, true);
        push_kv_u(&mut o, "overhead_ns", u128::from(f.overhead_ns), false);
        o.push_str("},");

        o.push_str("\"arrivals\":");
        o.push_str(&self.arrivals.to_json());
        o.push(',');

        o.push_str("\"fault_plan\":");
        o.push_str(&self.fault_plan.to_json());
        o.push(',');

        o.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            push_event(&mut o, e);
            if i + 1 < self.events.len() {
                o.push(',');
            }
        }
        o.push_str("],");

        o.push_str("\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            o.push('{');
            push_kv_u(&mut o, "index", d.index as u128, true);
            push_kv_u(&mut o, "capacity_bytes", d.capacity_bytes as u128, true);
            push_kv_u(&mut o, "busy_ns", d.busy_ns as u128, true);
            push_kv_u(&mut o, "jobs_run", d.jobs_run as u128, true);
            push_kv_u(&mut o, "iters", d.iters as u128, true);
            o.push_str(&format!("\"lost\":{}", d.lost));
            o.push('}');
            if i + 1 < self.devices.len() {
                o.push(',');
            }
        }
        o.push_str("],");

        o.push_str("\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            o.push('{');
            push_kv_s(&mut o, "name", &j.name, true);
            push_kv_s(&mut o, "policy", &j.policy, true);
            match j.budget_bytes {
                Some(b) => push_kv_u(&mut o, "budget_bytes", b as u128, true),
                None => o.push_str("\"budget_bytes\":null,"),
            }
            match j.device {
                Some(d) => push_kv_u(&mut o, "device", d as u128, true),
                None => {
                    o.push_str("\"device\":null,");
                }
            }
            push_kv_s(&mut o, "outcome", j.outcome.tag(), true);
            o.push_str(&format!("\"demoted\":{},", j.demoted));
            push_kv_u(&mut o, "iters", j.iters as u128, true);
            push_kv_u(&mut o, "arrival_ns", u128::from(j.arrival_ns), true);
            push_kv_u(&mut o, "queue_wait_ns", j.queue_wait_ns as u128, true);
            match j.finish_ns {
                Some(t) => push_kv_u(&mut o, "finish_ns", u128::from(t), true),
                None => o.push_str("\"finish_ns\":null,"),
            }
            push_kv_u(&mut o, "total_ns", j.total_ns as u128, true);
            push_kv_u(&mut o, "max_peak_bytes", j.max_peak_bytes as u128, true);
            push_kv_u(&mut o, "oom_iters", j.oom_iters as u128, true);
            push_kv_u(&mut o, "recovered_iters", j.recovered_iters as u128, true);
            push_kv_u(&mut o, "recovery_events", j.recovery_events as u128, true);
            push_kv_u(&mut o, "shuttle_iters", j.shuttle_iters as u128, true);
            push_kv_u(&mut o, "migrations", j.migrations as u128, true);
            push_kv_u(&mut o, "retries", j.retries as u128, true);
            push_kv_u(
                &mut o,
                "fleet_overhead_ns",
                u128::from(j.fleet_overhead_ns),
                true,
            );
            match j.graph_raw_peak_bytes {
                Some(v) => push_kv_u(&mut o, "graph_raw_peak_bytes", v as u128, true),
                None => o.push_str("\"graph_raw_peak_bytes\":null,"),
            }
            match j.graph_opt_peak_bytes {
                Some(v) => push_kv_u(&mut o, "graph_opt_peak_bytes", v as u128, true),
                None => o.push_str("\"graph_opt_peak_bytes\":null,"),
            }
            match &j.admission_reason {
                Some(r) => push_kv_s(&mut o, "admission_reason", r, true),
                None => o.push_str("\"admission_reason\":null,"),
            }
            o.push_str("\"placements\":[");
            for (k, p) in j.placements.iter().enumerate() {
                o.push('{');
                push_kv_u(&mut o, "device", p.device as u128, true);
                push_kv_u(&mut o, "busy_ns", u128::from(p.busy_ns), true);
                push_kv_u(&mut o, "iters", p.iters as u128, false);
                o.push('}');
                if k + 1 < j.placements.len() {
                    o.push(',');
                }
            }
            o.push_str("],");
            match &j.plan_tiers {
                Some(t) => {
                    o.push_str("\"plan_tiers\":{");
                    push_kv_u(&mut o, "certified_hits", u128::from(t.certified_hits), true);
                    push_kv_u(&mut o, "cache_hits", u128::from(t.cache_hits), true);
                    push_kv_u(&mut o, "repaired_plans", u128::from(t.repaired_plans), true);
                    push_kv_u(&mut o, "cold_solves", u128::from(t.cold_solves), false);
                    o.push('}');
                }
                None => o.push_str("\"plan_tiers\":null"),
            }
            o.push('}');
            if i + 1 < self.jobs.len() {
                o.push(',');
            }
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        // Unsorted input sorts internally.
        assert_eq!(percentile(&[30, 10, 20], 50.0), 20);
        assert_eq!(percentile(&[30, 10, 20], 99.0), 30);
    }

    fn row(name: &str, outcome: JobOutcome, device: Option<usize>, wait: u64) -> JobReport {
        JobReport {
            name: name.into(),
            policy: "Baseline".into(),
            budget_bytes: None,
            device,
            outcome,
            demoted: false,
            iters: 2,
            arrival_ns: 0,
            queue_wait_ns: wait,
            finish_ns: None,
            total_ns: 90,
            max_peak_bytes: 8,
            oom_iters: 0,
            recovered_iters: 0,
            recovery_events: 0,
            shuttle_iters: 0,
            plan_tiers: None,
            migrations: 0,
            retries: 0,
            fleet_overhead_ns: 0,
            graph_raw_peak_bytes: None,
            graph_opt_peak_bytes: None,
            admission_reason: None,
            placements: vec![],
        }
    }

    #[test]
    fn slo_fold_counts_only_what_it_should() {
        let jobs = vec![
            row("a", JobOutcome::Completed, Some(0), 10),
            row("b", JobOutcome::Migrated, Some(1), 30),
            row("c", JobOutcome::Rejected, None, 0),
            row("d", JobOutcome::Shed("full".into()), None, 0),
        ];
        let slo = SloRollup::fold(&jobs, &[5, 15, 25], 2_000_000_000);
        // Waits: only the two dispatched jobs.
        assert_eq!(slo.queue_wait_p50_ns, 10);
        assert_eq!(slo.queue_wait_p99_ns, 30);
        assert_eq!(slo.iter_latency_p50_ns, 15);
        // Goodput: the two finished jobs × 2 iters over 2 virtual seconds.
        assert_eq!(slo.goodput_iters, 4);
        assert!((slo.goodput_iters_per_s - 2.0).abs() < 1e-9);
        assert_eq!(slo.rejected_jobs, 1);
        assert_eq!(slo.shed_jobs, 1);
        assert_eq!(slo.failed_jobs, 0);
        assert!((slo.rejection_rate_pct - 25.0).abs() < 1e-9);
        assert!((slo.shed_rate_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_stable_and_escapes_names() {
        let jobs = vec![JobReport {
            name: "job \"a\"".into(),
            policy: "Baseline".into(),
            budget_bytes: Some(1 << 30),
            device: Some(0),
            outcome: JobOutcome::Migrated,
            demoted: false,
            iters: 2,
            arrival_ns: 7,
            queue_wait_ns: 0,
            finish_ns: Some(97),
            total_ns: 90,
            max_peak_bytes: 8,
            oom_iters: 0,
            recovered_iters: 0,
            recovery_events: 0,
            shuttle_iters: 0,
            plan_tiers: Some(PlanTierStats {
                certified_hits: 3,
                cache_hits: 1,
                repaired_plans: 2,
                cold_solves: 1,
            }),
            migrations: 1,
            retries: 1,
            fleet_overhead_ns: 65_000,
            graph_raw_peak_bytes: Some(12),
            graph_opt_peak_bytes: Some(8),
            admission_reason: Some("fits under \"usable\"".into()),
            placements: vec![
                JobPlacement {
                    device: 1,
                    busy_ns: 40,
                    iters: 1,
                },
                JobPlacement {
                    device: 0,
                    busy_ns: 50,
                    iters: 1,
                },
            ],
        }];
        let slo = SloRollup::fold(&jobs, &[40, 50], 100);
        let report = ClusterReport {
            schedule: "fifo".into(),
            mode: "event-driven".into(),
            arrivals: ArrivalProcess::poisson(1_000, 7),
            rounds: 2,
            makespan_ns: 100,
            busy_ns: 90,
            utilization_pct: 45.0,
            mean_queue_wait_ns: 5,
            max_queue_wait_ns: 10,
            oom_iters: 0,
            recovered_iters: 0,
            recovery_events: 0,
            admission: AdmissionStats::default(),
            slo,
            fleet: FleetStats {
                devices_lost: 1,
                checkpoints: 1,
                migrations: 1,
                shed_jobs: 0,
                failed_jobs: 0,
                max_retries: 3,
                overhead_ns: 65_000,
            },
            fault_plan: FleetFaultPlan::none(0),
            events: vec![
                FleetEvent {
                    round: 0,
                    at_ns: 7,
                    kind: FleetEventKind::Arrive { job: 0 },
                    cost_ns: 0,
                },
                FleetEvent {
                    round: 0,
                    at_ns: 7,
                    kind: FleetEventKind::Dispatch {
                        job: 0,
                        device: 1,
                        seq: 0,
                    },
                    cost_ns: 0,
                },
                FleetEvent {
                    round: 1,
                    at_ns: 47,
                    kind: FleetEventKind::DeviceDown {
                        device: 1,
                        until_round: None,
                    },
                    cost_ns: 0,
                },
                FleetEvent {
                    round: 1,
                    at_ns: 47,
                    kind: FleetEventKind::Checkpoint {
                        job: 0,
                        device: 1,
                        cursor: 1,
                    },
                    cost_ns: 25_000,
                },
                FleetEvent {
                    round: 2,
                    at_ns: 47,
                    kind: FleetEventKind::Migrate {
                        job: 0,
                        from: 1,
                        to: 0,
                        cursor: 1,
                        seq: 2,
                    },
                    cost_ns: 40_000,
                },
                FleetEvent {
                    round: 3,
                    at_ns: 97,
                    kind: FleetEventKind::Complete { job: 0, device: 0 },
                    cost_ns: 0,
                },
            ],
            devices: vec![DeviceReport {
                index: 0,
                capacity_bytes: 16,
                busy_ns: 90,
                jobs_run: 1,
                iters: 2,
                lost: false,
            }],
            jobs,
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schedule\":\"fifo\",\"mode\":\"event-driven\""));
        assert!(a.contains("job \\\"a\\\""));
        assert!(a.contains("\"utilization_pct\":45.0000"));
        assert!(a.contains(
            "\"plan_tiers\":{\"certified_hits\":3,\"cache_hits\":1,\
             \"repaired_plans\":2,\"cold_solves\":1}"
        ));
        assert!(a.contains("\"fleet\":{\"devices_lost\":1,"));
        assert!(a.contains("\"arrivals\":{\"kind\":\"poisson\""));
        assert!(a.contains("\"fault_plan\":{\"base\":{"));
        assert!(a.contains("\"slo\":{\"queue_wait_p50_ns\":0,"));
        assert!(a.contains("\"iter_latency_p50_ns\":40,"));
        assert!(a.contains("\"goodput_iters\":2,"));
        assert!(a.contains("\"kind\":\"arrive\",\"job\":0,\"cost_ns\":0"));
        assert!(a.contains("\"kind\":\"dispatch\",\"job\":0,\"device\":1,\"seq\":0"));
        assert!(a.contains("\"kind\":\"complete\",\"job\":0,\"device\":0"));
        assert!(
            a.contains("\"at_ns\":47,\"kind\":\"device-down\",\"device\":1,\"until_round\":null")
        );
        assert!(a.contains(
            "\"kind\":\"migrate\",\"job\":0,\"from\":1,\"to\":0,\
             \"cursor\":1,\"seq\":2,\"cost_ns\":40000"
        ));
        assert!(a.contains("\"outcome\":\"migrated\""));
        assert!(a.contains("\"budget_bytes\":1073741824,"));
        assert!(a.contains("\"arrival_ns\":7,"));
        assert!(a.contains("\"finish_ns\":97,"));
        assert!(a.contains("\"admission_reason\":\"fits under \\\"usable\\\"\""));
        assert!(a.contains("\"graph_raw_peak_bytes\":12,\"graph_opt_peak_bytes\":8,"));
        assert!(a.contains(
            "\"placements\":[{\"device\":1,\"busy_ns\":40,\"iters\":1},\
             {\"device\":0,\"busy_ns\":50,\"iters\":1}]"
        ));
        assert!(a.contains("\"lost\":false"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn outcome_finished_covers_both_success_paths() {
        assert!(JobOutcome::Completed.finished());
        assert!(JobOutcome::Migrated.finished());
        assert!(!JobOutcome::Rejected.finished());
        assert!(!JobOutcome::Shed("x".into()).finished());
        assert!(!JobOutcome::Failed("x".into()).finished());
    }
}
