//! The cluster front door: [`Cluster::builder()`] mirrors
//! [`Session::builder`](mimose_exec::Session::builder) one level up —
//! devices, workload, arrival process and execution mode are chained onto
//! a [`ClusterBuilder`], and `.run()` returns
//! `Result<ClusterOutcome, ClusterError>` instead of panicking on a
//! malformed spec.
//!
//! ```
//! use mimose_cluster::{Cluster, ClusterError, DevicePool, Workload};
//!
//! # fn main() -> Result<(), ClusterError> {
//! let outcome = Cluster::builder()
//!     .devices(DevicePool::v100(2))
//!     .workload(Workload::mixed(3))
//!     .run()?;
//! assert_eq!(outcome.report.jobs.len(), 8);
//! # Ok(())
//! # }
//! ```

use crate::des::run_event;
use crate::error::ClusterError;
use crate::scheduler::{run_bsp, ClusterOutcome, ClusterSpec, SchedulePolicy};
use crate::workload::{DevicePool, Workload};
use mimose_chaos::FleetFaultPlan;
use mimose_data::ArrivalProcess;

/// How the fleet advances virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// BSP rounds: every job is present at `t = 0`, each round every busy
    /// device runs exactly one iteration, a barrier joins them. The batch
    /// world — maximally parallel, arrival-blind.
    #[default]
    Bsp,
    /// Discrete-event simulation: a virtual-time event queue drives job
    /// arrivals, per-iteration completions, timed device faults and
    /// backoff expiries; dispatch happens at event boundaries. The serving
    /// world — queueing, SLO tails and overload behavior become visible.
    /// The `threads` knob has no effect here (the event loop is serial by
    /// construction), so reports are trivially thread-count-independent.
    EventDriven,
}

impl Mode {
    /// Stable lowercase name ("bsp", "event-driven").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Bsp => "bsp",
            Mode::EventDriven => "event-driven",
        }
    }

    /// Parse a [`Self::name`] string (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "bsp" => Some(Mode::Bsp),
            "event-driven" | "event" | "des" => Some(Mode::EventDriven),
            _ => None,
        }
    }
}

/// The fleet. Construct runs through [`Cluster::builder`].
pub struct Cluster;

impl Cluster {
    /// Start building a cluster run.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }
}

/// Builder for one cluster run; see the module docs for the shape.
/// Defaults mirror `ClusterSpec::new`: FIFO dispatch, parallel rounds,
/// 0.95 headroom, no faults, no recording, 3 displacement retries, BSP
/// mode with immediate arrivals and no queue limit.
pub struct ClusterBuilder {
    devices: Option<DevicePool>,
    workload: Option<Workload>,
    arrivals: ArrivalProcess,
    mode: Mode,
    schedule: SchedulePolicy,
    threads: usize,
    headroom: f64,
    faults: FleetFaultPlan,
    record: bool,
    max_retries: usize,
    queue_limit: Option<usize>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            devices: None,
            workload: None,
            arrivals: ArrivalProcess::Immediate,
            mode: Mode::Bsp,
            schedule: SchedulePolicy::Fifo,
            threads: 0,
            headroom: 0.95,
            faults: FleetFaultPlan::none(0),
            record: false,
            max_retries: 3,
            queue_limit: None,
        }
    }
}

impl ClusterBuilder {
    /// Set the device pool (required).
    #[must_use]
    pub fn devices(mut self, devices: DevicePool) -> Self {
        self.devices = Some(devices);
        self
    }

    /// Set the workload (required).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Set the arrival process (event-driven mode only; BSP ignores it —
    /// the batch world has every job present at `t = 0`).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Set the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the dispatch policy.
    #[must_use]
    pub fn schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the BSP threading mode: `1` runs rounds serially on the calling
    /// thread; any other value spawns one scoped thread per busy device.
    /// The report is byte-identical either way; event-driven mode ignores
    /// the knob entirely.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the admission headroom (fraction of device memory admission may
    /// plan into).
    #[must_use]
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Set the fleet fault plan.
    #[must_use]
    pub fn faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable event recording.
    #[must_use]
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Set the displacement retry budget.
    #[must_use]
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Bound the pending queue (event-driven mode): a job arriving while
    /// `queue_limit` jobs already wait is shed on arrival with an explicit
    /// "queue full" outcome — the fleet's overload valve. `None` (the
    /// default) queues without bound.
    #[must_use]
    pub fn queue_limit(mut self, queue_limit: Option<usize>) -> Self {
        self.queue_limit = queue_limit;
        self
    }

    /// Compile the builder into a validated [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::MissingWorkload`] when no workload was set,
    /// [`ClusterError::EmptyDevicePool`] when the pool is missing or
    /// empty, [`ClusterError::ZeroIterationJob`] when a job requests zero
    /// iterations.
    pub fn build(self) -> Result<ClusterSpec, ClusterError> {
        let workload = self.workload.ok_or(ClusterError::MissingWorkload)?;
        let devices = self.devices.unwrap_or_else(|| DevicePool::custom(vec![]));
        let spec = ClusterSpec {
            jobs: workload.into_jobs(),
            devices: devices.into_devices(),
            schedule: self.schedule,
            threads: self.threads,
            headroom: self.headroom,
            faults: self.faults,
            record: self.record,
            max_retries: self.max_retries,
            mode: self.mode,
            arrivals: self.arrivals,
            queue_limit: self.queue_limit,
        };
        validate(&spec)?;
        Ok(spec)
    }

    /// Compile and run the cluster to completion. Per-job failures
    /// (profile errors, data exhaustion, displacement past the retry
    /// budget) and load-shed jobs are recorded in the report, not
    /// returned — a run that starts always yields a report, even when the
    /// fault plan kills every device.
    ///
    /// # Errors
    ///
    /// See [`ClusterBuilder::build`].
    pub fn run(self) -> Result<ClusterOutcome, ClusterError> {
        let spec = self.build()?;
        match spec.mode {
            Mode::Bsp => run_bsp(&spec),
            Mode::EventDriven => run_event(&spec),
        }
    }
}

/// Shared spec validation: both drivers re-check before running, so even
/// hand-built `ClusterSpec`s (the legacy path) get the typed errors.
pub(crate) fn validate(spec: &ClusterSpec) -> Result<(), ClusterError> {
    if spec.devices.is_empty() {
        return Err(ClusterError::EmptyDevicePool);
    }
    if let Some(job) = spec.jobs.iter().find(|j| j.iters == 0) {
        return Err(ClusterError::ZeroIterationJob {
            name: job.name.clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in [Mode::Bsp, Mode::EventDriven] {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
        assert_eq!(Mode::parse("des"), Some(Mode::EventDriven));
        assert_eq!(Mode::parse("nope"), None);
        assert_eq!(Mode::default(), Mode::Bsp);
    }

    #[test]
    fn builder_rejects_malformed_specs_with_typed_errors() {
        assert_eq!(
            Cluster::builder().devices(DevicePool::v100(2)).run().err(),
            Some(ClusterError::MissingWorkload)
        );
        assert_eq!(
            Cluster::builder().workload(Workload::mixed(2)).run().err(),
            Some(ClusterError::EmptyDevicePool)
        );
        assert_eq!(
            Cluster::builder()
                .devices(DevicePool::v100(0))
                .workload(Workload::mixed(2))
                .run()
                .err(),
            Some(ClusterError::EmptyDevicePool)
        );
        let err = Cluster::builder()
            .devices(DevicePool::v100(1))
            .workload(Workload::mixed(0))
            .run()
            .err();
        assert!(
            matches!(err, Some(ClusterError::ZeroIterationJob { .. })),
            "{err:?}"
        );
    }
}
