//! Typed cluster-construction errors: the conditions under which a fleet
//! run cannot even start. Everything that can go wrong *during* a run
//! (profile failures, displacement past the retry budget, shedding) is
//! data on the [`ClusterReport`](crate::ClusterReport) — a run that starts
//! always yields a report.

use std::fmt;

/// Why a cluster run could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The device pool is empty (or was never set on the builder): there
    /// is nowhere to dispatch, so admission has nothing to decide against.
    EmptyDevicePool,
    /// The builder was run without a workload.
    MissingWorkload,
    /// A job requests zero iterations; the scheduler's invariant is that
    /// every dispatched job executes at least one iteration per placement.
    ZeroIterationJob {
        /// Name of the offending job.
        name: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyDevicePool => {
                write!(f, "cluster needs at least one device in the pool")
            }
            ClusterError::MissingWorkload => {
                write!(
                    f,
                    "cluster needs a workload (Cluster::builder().workload(..))"
                )
            }
            ClusterError::ZeroIterationJob { name } => {
                write!(f, "job {name:?} requests zero iterations")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_condition() {
        assert!(ClusterError::EmptyDevicePool.to_string().contains("device"));
        assert!(ClusterError::MissingWorkload
            .to_string()
            .contains("workload"));
        let e = ClusterError::ZeroIterationJob {
            name: "bert-qqp".into(),
        };
        assert!(e.to_string().contains("bert-qqp"));
        assert!(e.to_string().contains("zero iterations"));
    }
}
