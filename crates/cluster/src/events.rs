//! Typed fleet-lifecycle events: the scheduler's failure protocol as an
//! append-only, cost-attributed chain on the [`ClusterReport`]
//! (`crate::ClusterReport`) — device down/up transitions, job checkpoints,
//! requeues with exponential backoff, migrations and load shedding. The
//! audit layer re-derives every fleet rollup counter from this chain, so a
//! lost device's jobs can never be dropped silently.

/// Modeled virtual cost of checkpointing an in-flight job at an iteration
/// boundary (serializing the policy/estimator state and stream cursor).
pub const CHECKPOINT_COST_NS: u64 = 25_000;
/// Modeled virtual cost of restoring a checkpoint on the migration target
/// (rebuilding the session and fast-forwarding the batch stream).
pub const RESTORE_COST_NS: u64 = 40_000;
/// Base of the exponential requeue backoff: a job displaced for the
/// `n`-th time waits `BACKOFF_BASE_ROUNDS << (n - 1)` rounds before it is
/// eligible for re-admission.
pub const BACKOFF_BASE_ROUNDS: usize = 1;

/// What happened, fleet-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEventKind {
    /// A device became unreachable. `until_round` is the round it returns
    /// (`None` = permanently lost).
    DeviceDown {
        /// Device index.
        device: usize,
        /// First round the device is back up; `None` for permanent loss.
        until_round: Option<usize>,
    },
    /// A transiently-down device returned to service.
    DeviceUp {
        /// Device index.
        device: usize,
    },
    /// An in-flight job was parked at its last completed iteration
    /// boundary because its device went down.
    Checkpoint {
        /// Job submission index.
        job: usize,
        /// Device the job was checkpointed off.
        device: usize,
        /// Next iteration the resumed job will run.
        cursor: usize,
    },
    /// A checkpointed job re-entered the admission queue.
    Requeue {
        /// Job submission index.
        job: usize,
        /// How many times this job has now been displaced.
        retries: usize,
    },
    /// The requeued job's exponential-backoff window.
    Backoff {
        /// Job submission index.
        job: usize,
        /// First round the job is eligible for re-admission.
        until_round: usize,
    },
    /// A checkpointed job was re-admitted and resumed on a surviving
    /// device.
    Migrate {
        /// Job submission index.
        job: usize,
        /// Device the job was displaced from.
        from: usize,
        /// Device the job resumed on.
        to: usize,
        /// Iteration the job resumed at.
        cursor: usize,
        /// Global dispatch sequence number of the migration dispatch.
        seq: usize,
    },
    /// A job was shed: the degraded fleet can never place it, so it is
    /// dropped explicitly (lowest priority first) rather than starved.
    Shed {
        /// Job submission index.
        job: usize,
        /// Why the job was shed.
        reason: String,
    },
    /// A displaced job was failed (retry budget exhausted or the resumed
    /// session could not be rebuilt).
    Fail {
        /// Job submission index.
        job: usize,
        /// Why the job failed.
        reason: String,
    },
}

impl FleetEventKind {
    /// Stable lowercase tag for serialization.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            FleetEventKind::DeviceDown { .. } => "device-down",
            FleetEventKind::DeviceUp { .. } => "device-up",
            FleetEventKind::Checkpoint { .. } => "checkpoint",
            FleetEventKind::Requeue { .. } => "requeue",
            FleetEventKind::Backoff { .. } => "backoff",
            FleetEventKind::Migrate { .. } => "migrate",
            FleetEventKind::Shed { .. } => "shed",
            FleetEventKind::Fail { .. } => "fail",
        }
    }

    /// The job the event concerns, when it concerns one.
    #[must_use]
    pub fn job(&self) -> Option<usize> {
        match self {
            FleetEventKind::Checkpoint { job, .. }
            | FleetEventKind::Requeue { job, .. }
            | FleetEventKind::Backoff { job, .. }
            | FleetEventKind::Migrate { job, .. }
            | FleetEventKind::Shed { job, .. }
            | FleetEventKind::Fail { job, .. } => Some(*job),
            FleetEventKind::DeviceDown { .. } | FleetEventKind::DeviceUp { .. } => None,
        }
    }
}

/// One entry of the fleet-event chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// Scheduler round the event was observed in.
    pub round: usize,
    /// What happened.
    pub kind: FleetEventKind,
    /// Modeled virtual cost attributed to the affected job's fleet
    /// overhead (zero for pure bookkeeping like backoff windows).
    pub cost_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_job_attribution_are_stable() {
        let e = FleetEventKind::Migrate {
            job: 3,
            from: 1,
            to: 0,
            cursor: 2,
            seq: 9,
        };
        assert_eq!(e.tag(), "migrate");
        assert_eq!(e.job(), Some(3));
        let d = FleetEventKind::DeviceDown {
            device: 1,
            until_round: None,
        };
        assert_eq!(d.tag(), "device-down");
        assert_eq!(d.job(), None);
        assert_eq!(
            FleetEventKind::Shed {
                job: 0,
                reason: "x".into()
            }
            .job(),
            Some(0)
        );
    }
}
