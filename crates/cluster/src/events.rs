//! Typed fleet-lifecycle events: the scheduler's protocol as an
//! append-only, cost-attributed chain on the [`ClusterReport`]
//! (`crate::ClusterReport`) — device down/up transitions, job checkpoints,
//! requeues with exponential backoff, migrations and load shedding, plus
//! (in event-driven mode) every arrival, dispatch, completion and
//! rejection. The audit layer re-derives every fleet rollup counter and
//! every SLO tail percentile from this chain, so a lost device's jobs can
//! never be dropped silently and a quoted p99 can never drift from the
//! events behind it.
//!
//! Every event carries two clocks: `round` (the BSP round or event-loop
//! epoch it was observed in) and `at_ns` (the fleet's virtual time at
//! emission — the furthest any device has run in BSP mode, the event-queue
//! time in event-driven mode). Both are nondecreasing in chain order.

/// Modeled virtual cost of checkpointing an in-flight job at an iteration
/// boundary (serializing the policy/estimator state and stream cursor).
pub const CHECKPOINT_COST_NS: u64 = 25_000;
/// Modeled virtual cost of restoring a checkpoint on the migration target
/// (rebuilding the session and fast-forwarding the batch stream).
pub const RESTORE_COST_NS: u64 = 40_000;
/// Base of the exponential requeue backoff in BSP mode: a job displaced
/// for the `n`-th time waits `BACKOFF_BASE_ROUNDS << (n - 1)` rounds
/// before it is eligible for re-admission.
pub const BACKOFF_BASE_ROUNDS: usize = 1;
/// Base of the exponential requeue backoff in event-driven mode: a job
/// displaced for the `n`-th time waits `BACKOFF_BASE_NS << (n - 1)`
/// virtual nanoseconds before it is eligible for re-admission.
pub const BACKOFF_BASE_NS: u64 = 1_000_000;

/// What happened, fleet-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEventKind {
    /// A job entered the fleet (event-driven mode only; in BSP mode every
    /// job is present at round 0 and no arrival is recorded).
    Arrive {
        /// Job submission index.
        job: usize,
    },
    /// A fresh job was admitted and started on a device (event-driven
    /// mode only; BSP dispatches are recorded on the job's detail row).
    Dispatch {
        /// Job submission index.
        job: usize,
        /// Device the job started on.
        device: usize,
        /// Global dispatch sequence number.
        seq: usize,
    },
    /// A job executed its last requested iteration (event-driven mode
    /// only).
    Complete {
        /// Job submission index.
        job: usize,
        /// Device the job finished on.
        device: usize,
    },
    /// A job's submission-time rejection, replayed on its arrival so the
    /// event chain settles every job (event-driven mode only).
    Reject {
        /// Job submission index.
        job: usize,
        /// Why admission rejected the job.
        reason: String,
    },
    /// A device became unreachable. `until_round` is the BSP round (or,
    /// in event-driven mode, the virtual nanosecond) it returns
    /// (`None` = permanently lost).
    DeviceDown {
        /// Device index.
        device: usize,
        /// First round (BSP) or virtual nanosecond (event-driven) the
        /// device is back up; `None` for permanent loss.
        until_round: Option<usize>,
    },
    /// A transiently-down device returned to service.
    DeviceUp {
        /// Device index.
        device: usize,
    },
    /// An in-flight job was parked at its last completed iteration
    /// boundary because its device went down.
    Checkpoint {
        /// Job submission index.
        job: usize,
        /// Device the job was checkpointed off.
        device: usize,
        /// Next iteration the resumed job will run.
        cursor: usize,
    },
    /// A checkpointed job re-entered the admission queue.
    Requeue {
        /// Job submission index.
        job: usize,
        /// How many times this job has now been displaced.
        retries: usize,
    },
    /// The requeued job's exponential-backoff window.
    Backoff {
        /// Job submission index.
        job: usize,
        /// First round (BSP) or virtual nanosecond (event-driven) the job
        /// is eligible for re-admission.
        until_round: usize,
    },
    /// A checkpointed job was re-admitted and resumed on a surviving
    /// device.
    Migrate {
        /// Job submission index.
        job: usize,
        /// Device the job was displaced from.
        from: usize,
        /// Device the job resumed on.
        to: usize,
        /// Iteration the job resumed at.
        cursor: usize,
        /// Global dispatch sequence number of the migration dispatch.
        seq: usize,
    },
    /// A job was shed: the degraded fleet can never place it (or, in
    /// event-driven mode, its bounded queue was full on arrival), so it
    /// is dropped explicitly rather than starved.
    Shed {
        /// Job submission index.
        job: usize,
        /// Why the job was shed.
        reason: String,
    },
    /// A displaced job was failed (retry budget exhausted or the resumed
    /// session could not be rebuilt).
    Fail {
        /// Job submission index.
        job: usize,
        /// Why the job failed.
        reason: String,
    },
}

impl FleetEventKind {
    /// Stable lowercase tag for serialization.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            FleetEventKind::Arrive { .. } => "arrive",
            FleetEventKind::Dispatch { .. } => "dispatch",
            FleetEventKind::Complete { .. } => "complete",
            FleetEventKind::Reject { .. } => "reject",
            FleetEventKind::DeviceDown { .. } => "device-down",
            FleetEventKind::DeviceUp { .. } => "device-up",
            FleetEventKind::Checkpoint { .. } => "checkpoint",
            FleetEventKind::Requeue { .. } => "requeue",
            FleetEventKind::Backoff { .. } => "backoff",
            FleetEventKind::Migrate { .. } => "migrate",
            FleetEventKind::Shed { .. } => "shed",
            FleetEventKind::Fail { .. } => "fail",
        }
    }

    /// The job the event concerns, when it concerns one.
    #[must_use]
    pub fn job(&self) -> Option<usize> {
        match self {
            FleetEventKind::Arrive { job }
            | FleetEventKind::Dispatch { job, .. }
            | FleetEventKind::Complete { job, .. }
            | FleetEventKind::Reject { job, .. }
            | FleetEventKind::Checkpoint { job, .. }
            | FleetEventKind::Requeue { job, .. }
            | FleetEventKind::Backoff { job, .. }
            | FleetEventKind::Migrate { job, .. }
            | FleetEventKind::Shed { job, .. }
            | FleetEventKind::Fail { job, .. } => Some(*job),
            FleetEventKind::DeviceDown { .. } | FleetEventKind::DeviceUp { .. } => None,
        }
    }
}

/// One entry of the fleet-event chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// Scheduler round (BSP) or event-loop epoch (event-driven) the event
    /// was observed in.
    pub round: usize,
    /// Fleet virtual time at emission, nanoseconds (see module docs).
    pub at_ns: u64,
    /// What happened.
    pub kind: FleetEventKind,
    /// Modeled virtual cost attributed to the affected job's fleet
    /// overhead (zero for pure bookkeeping like backoff windows).
    pub cost_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_job_attribution_are_stable() {
        let e = FleetEventKind::Migrate {
            job: 3,
            from: 1,
            to: 0,
            cursor: 2,
            seq: 9,
        };
        assert_eq!(e.tag(), "migrate");
        assert_eq!(e.job(), Some(3));
        let d = FleetEventKind::DeviceDown {
            device: 1,
            until_round: None,
        };
        assert_eq!(d.tag(), "device-down");
        assert_eq!(d.job(), None);
        assert_eq!(
            FleetEventKind::Shed {
                job: 0,
                reason: "x".into()
            }
            .job(),
            Some(0)
        );
        for (kind, tag) in [
            (FleetEventKind::Arrive { job: 2 }, "arrive"),
            (
                FleetEventKind::Dispatch {
                    job: 2,
                    device: 0,
                    seq: 1,
                },
                "dispatch",
            ),
            (FleetEventKind::Complete { job: 2, device: 0 }, "complete"),
            (
                FleetEventKind::Reject {
                    job: 2,
                    reason: "floor".into(),
                },
                "reject",
            ),
        ] {
            assert_eq!(kind.tag(), tag);
            assert_eq!(kind.job(), Some(2));
        }
    }
}
