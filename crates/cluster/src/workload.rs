//! Canonical workloads: reproducible job mixes for benchmarks and gates.

use crate::job::{JobPolicy, JobSpec};
use mimose_data::presets;
use mimose_models::builders::{bert_base, resnet50_od, roberta_base, BertHead};
use mimose_planner::PolicyKind;
use mimose_simgpu::DeviceProfile;

const GIB: usize = 1 << 30;

/// A pool of `n` identical V100s.
#[must_use]
pub fn v100_pool(n: usize) -> Vec<DeviceProfile> {
    (0..n).map(|_| DeviceProfile::v100()).collect()
}

/// The eight-job mixed NLP/vision workload the cluster benchmarks run:
/// BERT/RoBERTa fine-tuning and ResNet-50 detection across four datasets,
/// under a spread of policies (Mimose, static planners, DTR, unconstrained
/// baseline) and budgets. `iters` sets each job's length; seeds are fixed
/// so the workload is one deterministic value. The Mimose jobs carry fleet
/// priority 1 (everything else 0), so degraded pools shed the static
/// baselines before the input-aware jobs — inert in clean runs.
#[must_use]
pub fn mixed_workload(iters: usize) -> Vec<JobSpec> {
    let cls = || bert_base(BertHead::Classification { labels: 2 }).optimize();
    vec![
        JobSpec::new(
            "bert-qqp-mimose",
            cls(),
            presets::glue_qqp(),
            JobPolicy::Mimose { budget: 6 * GIB },
            iters,
            11,
        )
        .with_priority(1),
        JobSpec::new(
            "roberta-squad-mimose",
            roberta_base(BertHead::QuestionAnswering).optimize(),
            presets::squad(),
            JobPolicy::Mimose { budget: 7 * GIB },
            iters,
            12,
        )
        .with_priority(1),
        JobSpec::new(
            "bert-swag-sublinear",
            bert_base(BertHead::Classification { labels: 4 }).optimize(),
            presets::swag(),
            JobPolicy::Planner(PolicyKind::Sublinear, 8 * GIB),
            iters,
            13,
        ),
        JobSpec::new(
            "resnet-coco-dtr",
            resnet50_od().optimize(),
            presets::coco(8),
            JobPolicy::Planner(PolicyKind::Dtr, 10 * GIB),
            iters,
            14,
        ),
        JobSpec::new(
            "bert-qqp-baseline",
            cls(),
            presets::glue_qqp(),
            JobPolicy::Planner(PolicyKind::Baseline, 0),
            iters,
            15,
        ),
        JobSpec::new(
            "roberta-qqp-capuchin",
            roberta_base(BertHead::Classification { labels: 2 }).optimize(),
            presets::glue_qqp(),
            JobPolicy::Planner(PolicyKind::Capuchin, 8 * GIB),
            iters,
            16,
        ),
        JobSpec::new(
            "resnet-coco-mimose",
            resnet50_od().optimize(),
            presets::coco(6),
            JobPolicy::Mimose { budget: 9 * GIB },
            iters,
            17,
        )
        .with_priority(1),
        JobSpec::new(
            "bert-squad-sublinear",
            bert_base(BertHead::QuestionAnswering).optimize(),
            presets::squad(),
            JobPolicy::Planner(PolicyKind::Sublinear, 7 * GIB),
            iters,
            18,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let jobs = mixed_workload(10);
        assert_eq!(jobs.len(), 8);
        for job in &jobs {
            job.worst_profile()
                .unwrap_or_else(|e| panic!("{}: {e}", job.name));
            assert!(job.iters <= job.dataset.iters_per_epoch(), "{}", job.name);
        }
        // Names are unique (report rows key on them).
        let mut names: Vec<_> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
