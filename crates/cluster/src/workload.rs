//! Canonical device pools and workloads: the typed inputs to
//! [`Cluster::builder`](crate::Cluster), with every magic budget, seed and
//! priority hoisted into a named, documented constant so the report's
//! numbers trace back to something greppable.

use crate::job::{JobPolicy, JobSpec};
use mimose_data::presets;
use mimose_models::builders::{bert_base, resnet50_od, roberta_base, BertHead};
use mimose_planner::PolicyKind;
use mimose_simgpu::DeviceProfile;

const GIB: usize = 1 << 30;

/// A typed pool of devices for the builder. Wraps the raw
/// [`DeviceProfile`] list so call sites say what the pool *is*
/// (`DevicePool::v100(4)`) rather than how it is assembled.
#[derive(Debug, Clone)]
pub struct DevicePool {
    devices: Vec<DeviceProfile>,
}

impl DevicePool {
    /// A pool of `n` identical V100s — the canonical benchmark pool.
    #[must_use]
    pub fn v100(n: usize) -> Self {
        DevicePool {
            devices: (0..n).map(|_| DeviceProfile::v100()).collect(),
        }
    }

    /// A pool of explicit device profiles.
    #[must_use]
    pub fn custom(devices: Vec<DeviceProfile>) -> Self {
        DevicePool { devices }
    }

    /// Number of devices in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (the builder rejects such pools).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    pub(crate) fn into_devices(self) -> Vec<DeviceProfile> {
        self.devices
    }
}

/// A typed job mix for the builder.
#[derive(Clone)]
pub struct Workload {
    jobs: Vec<JobSpec>,
}

impl Workload {
    /// Memory budget of the `bert-qqp-mimose` job: tight enough that the
    /// input-aware planner must checkpoint on long QQP batches.
    pub const BERT_QQP_MIMOSE_BUDGET: usize = 6 * GIB;
    /// Memory budget of the `roberta-squad-mimose` job.
    pub const ROBERTA_SQUAD_MIMOSE_BUDGET: usize = 7 * GIB;
    /// Memory budget of the `bert-swag-sublinear` static plan.
    pub const BERT_SWAG_SUBLINEAR_BUDGET: usize = 8 * GIB;
    /// Memory budget of the `resnet-coco-dtr` eviction policy.
    pub const RESNET_COCO_DTR_BUDGET: usize = 10 * GIB;
    /// Memory budget of the `roberta-qqp-capuchin` swap policy.
    pub const ROBERTA_QQP_CAPUCHIN_BUDGET: usize = 8 * GIB;
    /// Memory budget of the `resnet-coco-mimose` job.
    pub const RESNET_COCO_MIMOSE_BUDGET: usize = 9 * GIB;
    /// Memory budget of the `bert-squad-sublinear` static plan.
    pub const BERT_SQUAD_SUBLINEAR_BUDGET: usize = 7 * GIB;
    /// Per-image detection batch size of the `resnet-coco-dtr` job.
    pub const RESNET_DTR_BATCH: usize = 8;
    /// Per-image detection batch size of the `resnet-coco-mimose` job.
    pub const RESNET_MIMOSE_BATCH: usize = 6;
    /// Base data-stream seed of the mixed workload; job `i` uses
    /// `BASE_SEED + i`, so every job draws a distinct, reproducible
    /// batch-length sequence.
    pub const BASE_SEED: u64 = 11;
    /// Fleet priority of the input-aware (Mimose) jobs. Higher wins under
    /// degradation: a degraded pool sheds the static baselines
    /// (priority [`Self::BASELINE_PRIORITY`]) before the input-aware
    /// jobs — inert in clean runs.
    pub const MIMOSE_PRIORITY: u32 = 1;
    /// Fleet priority of everything else in the mix.
    pub const BASELINE_PRIORITY: u32 = 0;
    /// Seed stride between scaled-workload copies: copy `k` of job `i`
    /// uses `BASE_SEED + i + SCALED_SEED_STRIDE * k`, keeping every
    /// clone's batch-length draw distinct.
    pub const SCALED_SEED_STRIDE: u64 = 97;

    /// The eight-job mixed NLP/vision workload the cluster benchmarks
    /// run: BERT/RoBERTa fine-tuning and ResNet-50 detection across four
    /// datasets, under a spread of policies (Mimose, static planners,
    /// DTR, unconstrained baseline) and budgets. `iters` sets each job's
    /// length; seeds are fixed so the workload is one deterministic
    /// value.
    #[must_use]
    pub fn mixed(iters: usize) -> Self {
        let cls = || bert_base(BertHead::Classification { labels: 2 }).optimize();
        let seed = |i: u64| Self::BASE_SEED + i;
        Workload {
            jobs: vec![
                JobSpec::new(
                    "bert-qqp-mimose",
                    cls(),
                    presets::glue_qqp(),
                    JobPolicy::Mimose {
                        budget: Self::BERT_QQP_MIMOSE_BUDGET,
                    },
                    iters,
                    seed(0),
                )
                .with_priority(Self::MIMOSE_PRIORITY),
                JobSpec::new(
                    "roberta-squad-mimose",
                    roberta_base(BertHead::QuestionAnswering).optimize(),
                    presets::squad(),
                    JobPolicy::Mimose {
                        budget: Self::ROBERTA_SQUAD_MIMOSE_BUDGET,
                    },
                    iters,
                    seed(1),
                )
                .with_priority(Self::MIMOSE_PRIORITY),
                JobSpec::new(
                    "bert-swag-sublinear",
                    bert_base(BertHead::Classification { labels: 4 }).optimize(),
                    presets::swag(),
                    JobPolicy::Planner(PolicyKind::Sublinear, Self::BERT_SWAG_SUBLINEAR_BUDGET),
                    iters,
                    seed(2),
                ),
                JobSpec::new(
                    "resnet-coco-dtr",
                    resnet50_od().optimize(),
                    presets::coco(Self::RESNET_DTR_BATCH),
                    JobPolicy::Planner(PolicyKind::Dtr, Self::RESNET_COCO_DTR_BUDGET),
                    iters,
                    seed(3),
                ),
                JobSpec::new(
                    "bert-qqp-baseline",
                    cls(),
                    presets::glue_qqp(),
                    JobPolicy::Planner(PolicyKind::Baseline, 0),
                    iters,
                    seed(4),
                ),
                JobSpec::new(
                    "roberta-qqp-capuchin",
                    roberta_base(BertHead::Classification { labels: 2 }).optimize(),
                    presets::glue_qqp(),
                    JobPolicy::Planner(PolicyKind::Capuchin, Self::ROBERTA_QQP_CAPUCHIN_BUDGET),
                    iters,
                    seed(5),
                ),
                JobSpec::new(
                    "resnet-coco-mimose",
                    resnet50_od().optimize(),
                    presets::coco(Self::RESNET_MIMOSE_BATCH),
                    JobPolicy::Mimose {
                        budget: Self::RESNET_COCO_MIMOSE_BUDGET,
                    },
                    iters,
                    seed(6),
                )
                .with_priority(Self::MIMOSE_PRIORITY),
                JobSpec::new(
                    "bert-squad-sublinear",
                    bert_base(BertHead::QuestionAnswering).optimize(),
                    presets::squad(),
                    JobPolicy::Planner(PolicyKind::Sublinear, Self::BERT_SQUAD_SUBLINEAR_BUDGET),
                    iters,
                    seed(7),
                ),
            ],
        }
    }

    /// `n_jobs` jobs cycling through the mixed workload: copy `k` of job
    /// `i` is renamed `<name>-<k>` and reseeded with
    /// [`Self::SCALED_SEED_STRIDE`]` * k`, so an overload scenario's 200
    /// jobs are 200 distinct deterministic jobs, not 25 repeats of 8.
    #[must_use]
    pub fn scaled(iters: usize, n_jobs: usize) -> Self {
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut cycle = 0u64;
        while jobs.len() < n_jobs {
            for mut job in Self::mixed(iters).jobs {
                if jobs.len() >= n_jobs {
                    break;
                }
                if cycle > 0 {
                    job.name = format!("{}-{cycle}", job.name);
                    job.seed += Self::SCALED_SEED_STRIDE * cycle;
                }
                jobs.push(job);
            }
            cycle += 1;
        }
        Workload { jobs }
    }

    /// An explicit job list.
    #[must_use]
    pub fn custom(jobs: Vec<JobSpec>) -> Self {
        Workload { jobs }
    }

    /// Number of jobs in the workload.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Consume the workload into its job list (submission order).
    #[must_use]
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }
}

/// Legacy helper, kept so pre-builder call sites keep compiling. New code
/// says [`DevicePool::v100`].
#[doc(hidden)]
#[must_use]
pub fn v100_pool(n: usize) -> Vec<DeviceProfile> {
    DevicePool::v100(n).into_devices()
}

/// Legacy helper, kept so pre-builder call sites keep compiling. New code
/// says [`Workload::mixed`].
#[doc(hidden)]
#[must_use]
pub fn mixed_workload(iters: usize) -> Vec<JobSpec> {
    Workload::mixed(iters).into_jobs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let jobs = Workload::mixed(10).into_jobs();
        assert_eq!(jobs.len(), 8);
        for job in &jobs {
            job.worst_profile()
                .unwrap_or_else(|e| panic!("{}: {e}", job.name));
            assert!(job.iters <= job.dataset.iters_per_epoch(), "{}", job.name);
        }
        // Names are unique (report rows key on them).
        let mut names: Vec<_> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn legacy_wrappers_match_the_typed_constructors() {
        let a = mixed_workload(3);
        let b = Workload::mixed(3).into_jobs();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.iters, y.iters);
        }
        assert_eq!(v100_pool(3).len(), DevicePool::v100(3).len());
    }

    #[test]
    fn scaled_workload_is_distinct_and_deterministic() {
        let jobs = Workload::scaled(2, 20).into_jobs();
        assert_eq!(jobs.len(), 20);
        let mut names: Vec<_> = jobs.iter().map(|j| j.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "scaled names must be unique");
        let mut seeds: Vec<_> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20, "scaled seeds must be distinct");
        // First cycle is the mixed workload verbatim.
        let mixed = Workload::mixed(2).into_jobs();
        for (a, b) in jobs.iter().take(8).zip(&mixed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seed, b.seed);
        }
        // Determinism: same call, same value.
        let again = Workload::scaled(2, 20).into_jobs();
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seed, b.seed);
        }
    }
}
