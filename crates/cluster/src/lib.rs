//! mimose-cluster: a deterministic multi-device, multi-job scheduler on
//! top of the event-sourced runtime.
//!
//! The single-job stack answers "how does one training job behave under a
//! memory policy?"; this crate answers the fleet question: given N jobs
//! and M simulated devices, who runs where, does the next iteration fit
//! before we dispatch it, and what did the fleet cost? It composes the
//! existing layers rather than re-implementing them:
//!
//! - **Admission** ([`AdmissionController`]) gates dispatch on the
//!   policy's predicted peak for the job's next iteration against the
//!   device's headroom-discounted capacity, demoting (arming the recovery
//!   ladder) or rejecting via the analytic all-checkpoint floor.
//! - **Scheduling** comes in two modes behind one front door,
//!   [`Cluster::builder`]: **BSP rounds** ([`Mode::Bsp`]) — one iteration
//!   per busy device per round, real scoped threads, merge in
//!   device-index order — and a **discrete-event loop**
//!   ([`Mode::EventDriven`]) where an [`ArrivalProcess`] feeds jobs into
//!   a virtual-time queue and dispatch happens at event boundaries.
//!   Either way a [`ClusterReport`] is byte-identical run-to-run and
//!   across thread counts, and a 1-job/1-device BSP cluster degenerates
//!   exactly to [`mimose_exec::Session::run`].
//! - **Reporting** ([`ClusterReport`]) folds per-device
//!   [`RunSummary`](mimose_runtime::RunSummary)-compatible rollups into
//!   makespan, utilization, queue latency, OOM/recovery counts, admission
//!   accuracy and (from the typed [`FleetEvent`] chain) the serving-mode
//!   SLO tails ([`SloRollup`]: p50/p95/p99 queue wait and iteration
//!   latency, goodput, rejection/shed rates), serialized as deterministic
//!   JSON.
//!
//! ```
//! use mimose_cluster::{Cluster, ClusterError, DevicePool, Workload};
//!
//! # fn main() -> Result<(), ClusterError> {
//! let outcome = Cluster::builder()
//!     .devices(DevicePool::v100(2))
//!     .workload(Workload::mixed(3))
//!     .run()?;
//! assert_eq!(outcome.report.jobs.len(), 8);
//! assert!(outcome.report.makespan_ns > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Serving mode, with arrivals and a bounded queue:
//!
//! ```
//! use mimose_cluster::{ArrivalProcess, Cluster, ClusterError, DevicePool, Mode, Workload};
//!
//! # fn main() -> Result<(), ClusterError> {
//! let outcome = Cluster::builder()
//!     .devices(DevicePool::v100(2))
//!     .workload(Workload::mixed(2))
//!     .mode(Mode::EventDriven)
//!     .arrivals(ArrivalProcess::poisson(500_000, 42))
//!     .queue_limit(Some(16))
//!     .run()?;
//! assert_eq!(outcome.report.mode, "event-driven");
//! assert!(outcome.report.slo.iter_latency_p99_ns > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod admission;
mod des;
mod error;
mod events;
mod job;
mod protocol;
mod report;
mod scheduler;
mod spec;
mod workload;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionStats};
pub use error::ClusterError;
pub use events::{
    FleetEvent, FleetEventKind, BACKOFF_BASE_NS, BACKOFF_BASE_ROUNDS, CHECKPOINT_COST_NS,
    RESTORE_COST_NS,
};
pub use job::{
    DeterministicMimose, JobPolicy, JobSpec, MIMOSE_CACHE_HIT_COST_NS, MIMOSE_PLAN_COST_NS,
    MIMOSE_REPAIR_COST_NS,
};
/// Re-exported from `mimose-data`: the arrival processes the event-driven
/// mode draws job submission times from.
pub use mimose_data::ArrivalProcess;
pub use report::{
    ClusterReport, DeviceReport, FleetStats, JobOutcome, JobPlacement, JobReport, SloRollup,
};
pub use scheduler::{run_bsp, run_cluster, ClusterOutcome, ClusterSpec, JobDetail, SchedulePolicy};
pub use spec::{Cluster, ClusterBuilder, Mode};
pub use workload::{mixed_workload, v100_pool, DevicePool, Workload};
