//! mimose-cluster: a deterministic multi-device, multi-job scheduler on
//! top of the event-sourced runtime.
//!
//! The single-job stack answers "how does one training job behave under a
//! memory policy?"; this crate answers the fleet question: given N jobs
//! and M simulated devices, who runs where, does the next iteration fit
//! before we dispatch it, and what did the fleet cost? It composes the
//! existing layers rather than re-implementing them:
//!
//! - **Admission** ([`AdmissionController`]) gates dispatch on the
//!   policy's predicted peak for the job's next iteration against the
//!   device's headroom-discounted capacity, demoting (arming the recovery
//!   ladder) or rejecting via the analytic all-checkpoint floor.
//! - **Scheduling** ([`run_cluster`]) advances the fleet in BSP rounds —
//!   one iteration per busy device per round, real scoped threads, merge
//!   in device-index order — so a [`ClusterReport`] is byte-identical
//!   run-to-run and across thread counts, and a 1-job/1-device cluster
//!   degenerates exactly to [`mimose_exec::Session::run`].
//! - **Reporting** ([`ClusterReport`]) folds per-device
//!   [`RunSummary`](mimose_runtime::RunSummary)-compatible rollups into
//!   makespan, utilization, queue latency, OOM/recovery counts and
//!   admission accuracy, serialized as deterministic JSON.
//!
//! ```
//! use mimose_cluster::{run_cluster, ClusterSpec, mixed_workload, v100_pool};
//!
//! let spec = ClusterSpec::new(mixed_workload(3), v100_pool(2));
//! let outcome = run_cluster(&spec);
//! assert_eq!(outcome.report.jobs.len(), 8);
//! assert!(outcome.report.makespan_ns > 0);
//! ```

#![deny(missing_docs)]

mod admission;
mod events;
mod job;
mod report;
mod scheduler;
mod workload;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionStats};
pub use events::{
    FleetEvent, FleetEventKind, BACKOFF_BASE_ROUNDS, CHECKPOINT_COST_NS, RESTORE_COST_NS,
};
pub use job::{
    DeterministicMimose, JobPolicy, JobSpec, MIMOSE_CACHE_HIT_COST_NS, MIMOSE_PLAN_COST_NS,
    MIMOSE_REPAIR_COST_NS,
};
pub use report::{ClusterReport, DeviceReport, FleetStats, JobOutcome, JobPlacement, JobReport};
pub use scheduler::{run_cluster, ClusterOutcome, ClusterSpec, JobDetail, SchedulePolicy};
pub use workload::{mixed_workload, v100_pool};
