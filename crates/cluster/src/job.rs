//! Job specifications: what a cluster runs. A [`JobSpec`] owns its model
//! and dataset (sessions borrow them for the job's lifetime on a device)
//! and names its policy as data ([`JobPolicy`]), so a whole workload is a
//! plain value — cloneable, comparable, replayable.

use mimose_core::{MimoseConfig, MimosePolicy};
use mimose_data::Dataset;
use mimose_exec::RecoveryConfig;
use mimose_models::{ModelProfile, OptimizedGraph};
use mimose_planner::{Directive, IterationObservation, MemoryPolicy, PlannerMeta, PolicyKind};
use mimose_simgpu::DeviceProfile;

/// Which memory policy a job trains under, as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobPolicy {
    /// One of the six planner-crate policies under a byte budget
    /// (built via [`PolicyKind::build_on`]).
    Planner(PolicyKind, usize),
    /// Mimose (input-aware runtime planning) under a byte budget. Plan
    /// overhead is charged at a fixed modeled cost per generated plan /
    /// cache hit, so cluster runs are reproducible byte-for-byte (the
    /// wall-clock measurement the single-job harness reports is
    /// nondeterministic by nature).
    Mimose {
        /// Memory budget in bytes.
        budget: usize,
    },
}

impl JobPolicy {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobPolicy::Planner(kind, _) => kind.name(),
            JobPolicy::Mimose { .. } => "Mimose",
        }
    }

    /// The configured budget (`usize::MAX` for the unconstrained baseline).
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        match self {
            JobPolicy::Planner(PolicyKind::Baseline, _) => usize::MAX,
            JobPolicy::Planner(_, budget) => *budget,
            JobPolicy::Mimose { budget } => *budget,
        }
    }

    /// Instantiate the policy for a job whose static planners solve
    /// against `worst` on `device`.
    #[must_use]
    pub fn build(&self, worst: &ModelProfile, device: &DeviceProfile) -> Box<dyn MemoryPolicy> {
        match self {
            JobPolicy::Planner(kind, budget) => kind.build_on(worst, *budget, device),
            JobPolicy::Mimose { budget } => Box::new(DeterministicMimose::new(MimosePolicy::new(
                MimoseConfig::with_budget(*budget),
            ))),
        }
    }
}

/// Modeled plan-generation cost charged per cold-solving responsive
/// iteration (Table III puts Mimose's estimator+scheduler pass in the
/// sub-millisecond range).
pub const MIMOSE_PLAN_COST_NS: u64 = 120_000;
/// Modeled cost of serving a cached plan.
pub const MIMOSE_CACHE_HIT_COST_NS: u64 = 2_000;
/// Modeled cost of repairing a neighboring bucket's plan on a bucket miss
/// — an order of magnitude under a cold solve (a bounded number of
/// `O(log L)` residency flips vs a full scheduler pass), well above a hit.
pub const MIMOSE_REPAIR_COST_NS: u64 = 12_000;

/// [`MimosePolicy`] with its wall-clock plan-overhead measurement replaced
/// by a fixed modeled cost — the only nondeterministic channel in the
/// executor, removed so fleet runs replay byte-identically.
pub struct DeterministicMimose {
    inner: MimosePolicy,
    last_ns: u64,
}

impl DeterministicMimose {
    /// Wrap a policy.
    #[must_use]
    pub fn new(inner: MimosePolicy) -> Self {
        DeterministicMimose { inner, last_ns: 0 }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &MimosePolicy {
        &self.inner
    }
}

impl MemoryPolicy for DeterministicMimose {
    fn meta(&self) -> PlannerMeta {
        self.inner.meta()
    }

    fn budget_bytes(&self) -> usize {
        self.inner.budget_bytes()
    }

    fn begin_iteration(&mut self, iter: usize, profile: &ModelProfile) -> Directive {
        let plans_before = self.inner.stats().plans_generated;
        let repairs_before = self.inner.stats().repaired_plans;
        let hits_before = self.inner.stats().cache_hits + self.inner.stats().certified_hits;
        let directive = self.inner.begin_iteration(iter, profile);
        // Classify which ladder rung the inner policy just took by its own
        // counters and charge the modeled cost instead of the measured one.
        let st = self.inner.stats();
        self.last_ns = if st.plans_generated > plans_before {
            MIMOSE_PLAN_COST_NS
        } else if st.repaired_plans > repairs_before {
            MIMOSE_REPAIR_COST_NS
        } else if st.cache_hits + st.certified_hits > hits_before {
            MIMOSE_CACHE_HIT_COST_NS
        } else {
            0 // shuttle iterations plan nothing
        };
        directive
    }

    fn end_iteration(&mut self, obs: &IterationObservation) {
        self.inner.end_iteration(obs);
    }

    fn last_plan_overhead_ns(&self) -> u64 {
        self.last_ns
    }

    fn predicted_peak_bytes(&self, profile: &ModelProfile) -> Option<usize> {
        self.inner.predicted_peak_bytes(profile)
    }

    fn plan_tier_stats(&self) -> Option<mimose_planner::PlanTierStats> {
        self.inner.plan_tier_stats()
    }
}

/// One training job submitted to the cluster.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable job name (unique within a workload).
    pub name: String,
    /// The model to train (post optimization-pipeline; carries its raw
    /// graph and pass reports for admission evidence).
    pub model: OptimizedGraph,
    /// The dataset to stream.
    pub dataset: Dataset,
    /// The memory policy to train under.
    pub policy: JobPolicy,
    /// Iterations to run.
    pub iters: usize,
    /// Batch-stream seed.
    pub seed: u64,
    /// OOM-recovery ladder; `None` runs report-and-die. The admission
    /// controller arms a default ladder when it admits a job by demotion.
    pub recovery: Option<RecoveryConfig>,
    /// Fleet priority: when device loss shrinks the pool below the
    /// workload, the scheduler sheds *lower*-priority jobs first and
    /// offers freed capacity to *higher*-priority displaced jobs first.
    /// Ties break by submission order. Default 0.
    pub priority: u32,
}

impl JobSpec {
    /// A job with the default ladder disabled.
    pub fn new(
        name: impl Into<String>,
        model: OptimizedGraph,
        dataset: Dataset,
        policy: JobPolicy,
        iters: usize,
        seed: u64,
    ) -> Self {
        JobSpec {
            name: name.into(),
            model,
            dataset,
            policy,
            iters,
            seed,
            recovery: None,
            priority: 0,
        }
    }

    /// Enable the OOM-recovery ladder for this job.
    #[must_use]
    pub fn with_recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Set the fleet priority (see the field docs; higher sheds later).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// The worst-case profile static planners solve against.
    pub fn worst_profile(&self) -> Result<ModelProfile, mimose_models::ModelError> {
        self.model.profile(&self.dataset.worst_case())
    }

    /// Deterministic estimate of one iteration's execution time on `dev`
    /// (forward + backward FLOPs through the device cost model) — the
    /// ranking key for the shortest-predicted-iteration dispatch policy.
    #[must_use]
    pub fn predicted_iter_ns(&self, worst: &ModelProfile, dev: &DeviceProfile) -> u64 {
        let flops = worst.total_fwd_flops() + worst.total_bwd_flops();
        let bytes = worst.blocks.iter().map(|b| b.fwd_bytes_moved).sum();
        dev.exec_ns(flops, bytes) as u64
    }
}
