//! Mode-shared scheduling protocol: the parts of fleet scheduling that do
//! not depend on how virtual time advances. Both drivers — the BSP round
//! scheduler ([`run_bsp`](crate::scheduler::run_bsp)) and the discrete-
//! event loop ([`run_event`](crate::des::run_event)) — submit jobs through
//! the same profiling/certification pass, pick pending work with the same
//! [`SchedulePolicy`] comparators, and fold their final state through the
//! same report rollup, so a BSP run and its event-driven degenerate twin
//! differ only in *when* decisions happen, never in *how*.

use crate::admission::AdmissionController;
use crate::job::JobSpec;
use crate::report::{
    ClusterReport, DeviceReport, FleetStats, JobOutcome, JobPlacement, JobReport, SloRollup,
};
use crate::scheduler::{ClusterSpec, JobDetail, SchedulePolicy};
use mimose_models::{ModelProfile, PassReport};
use mimose_planner::memory_model::min_feasible_budget;
use mimose_planner::{CheckpointPlan, MemoryPolicy};
use mimose_simgpu::DeviceProfile;
use mimose_verify::{certify, SafetyCertificate, SizeBucket};

/// What the scheduler precomputes about a job at submission.
pub(crate) struct Submitted {
    /// Worst-case profile the static planners solved against.
    pub worst: ModelProfile,
    /// All-checkpoint floor over the worst case — the admit/demote/reject
    /// pivot.
    pub floor: usize,
    /// The policy's predicted peak for the job's first iteration.
    pub predicted_peak: usize,
    /// Static safety certificate over the job's worst case (sound no-plan
    /// peak bound), when it fits at least one device in the pool. Admits
    /// backed by it are scored as `verified_admits`.
    pub certificate: Option<SafetyCertificate>,
    /// The built policy, taken at first dispatch.
    pub policy: Option<Box<dyn MemoryPolicy>>,
    /// One-line summary of the graph passes that shrank the job's
    /// predicted peak, appended to demote/reject reasons so the report
    /// names the evidence behind the number it gated on.
    pub graph_evidence: Option<String>,
}

/// Headroom-discounted capacity admission gates against.
pub(crate) fn usable_bytes(dev: &DeviceProfile, headroom: f64) -> usize {
    (dev.total_mem_bytes as f64 * headroom) as usize
}

/// One line naming the optimization passes behind an admission number:
/// which passes touched the graph and how far they moved the predicted
/// peak. `None` when the raw graph could not be profiled, no pass did
/// anything, or the passes saved no bytes at this input size.
fn graph_evidence(
    reports: &[PassReport],
    raw_peak: Option<usize>,
    opt_peak: usize,
) -> Option<String> {
    let raw_peak = raw_peak?;
    let passes: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_noop())
        .map(|r| {
            format!(
                "{} ({} nodes)",
                r.pass.name(),
                r.nodes_removed + r.nodes_rewired + r.nodes_annotated
            )
        })
        .collect();
    if passes.is_empty() || raw_peak <= opt_peak {
        return None;
    }
    Some(format!(
        "graph passes [{}] cut the predicted peak from {raw_peak} B (raw graph) to {opt_peak} B",
        passes.join(", ")
    ))
}

/// Submission pass, shared verbatim by both drivers: profile each job,
/// build its policy (static planners solve once against the worst case,
/// costed on device 0), and settle jobs no device can ever hold. Jobs that
/// settle here get their outcome written directly; everyone else gets a
/// [`Submitted`] record.
pub(crate) fn submit_jobs(
    spec: &ClusterSpec,
    ctl: &mut AdmissionController,
    outcomes: &mut [Option<JobOutcome>],
    details: &mut [JobDetail],
) -> Vec<Option<Submitted>> {
    let n_jobs = spec.jobs.len();
    let mut submitted: Vec<Option<Submitted>> = Vec::with_capacity(n_jobs);
    let max_usable = spec
        .devices
        .iter()
        .map(|d| usable_bytes(d, spec.headroom))
        .max()
        .unwrap_or(0);
    for (j, job) in spec.jobs.iter().enumerate() {
        let worst = match job.worst_profile() {
            Ok(p) => p,
            Err(e) => {
                outcomes[j] = Some(JobOutcome::Failed(e.to_string()));
                submitted.push(None);
                continue;
            }
        };
        let floor = min_feasible_budget(&worst);
        if floor > max_usable {
            ctl.stats.rejected += 1;
            outcomes[j] = Some(JobOutcome::Rejected);
            details[j].admission_reason = Some(format!(
                "all-checkpoint floor {floor} B exceeds every device's usable \
                 capacity (max {max_usable} B)"
            ));
            submitted.push(None);
            continue;
        }
        let policy = job.policy.build(&worst, &spec.devices[0]);
        // Predict the first iteration's peak: that is the iteration the
        // dispatch decision gates.
        let first = spec.jobs[j].dataset.stream(job.seed).next_batch();
        let predicted_peak = match spec.jobs[j].model.profile(&first) {
            Ok(p) => policy
                .predicted_peak_bytes(&p)
                .unwrap_or_else(|| p.peak_no_checkpoint()),
            Err(e) => {
                outcomes[j] = Some(JobOutcome::Failed(e.to_string()));
                submitted.push(None);
                continue;
            }
        };
        // Graph-pass evidence: run the same prediction over the raw
        // (pre-pass) graph. A strictly lower optimized prediction is the
        // byte credit the admission report attributes to the pipeline.
        let graph_raw_peak = spec.jobs[j].model.raw_profile(&first).ok().map(|p| {
            policy
                .predicted_peak_bytes(&p)
                .unwrap_or_else(|| p.peak_no_checkpoint())
        });
        details[j].graph_raw_peak_bytes = graph_raw_peak;
        details[j].graph_opt_peak_bytes = Some(predicted_peak);
        let graph_evidence =
            graph_evidence(spec.jobs[j].model.reports(), graph_raw_peak, predicted_peak);
        // Statically verify the job where possible: the no-checkpoint peak
        // over the worst profile soundly bounds every plan at every input
        // size up to it, so a certificate that fits a device makes the
        // admit unconditional for this job.
        let certificate = certify(
            std::slice::from_ref(&worst),
            &CheckpointPlan::none(worst.blocks.len()),
            SizeBucket::new(1, worst.input_size),
            max_usable,
        )
        .ok();
        submitted.push(Some(Submitted {
            worst,
            floor,
            predicted_peak,
            certificate,
            policy: Some(policy),
            graph_evidence,
        }));
    }
    submitted
}

/// The device a dispatch decision sees: the pool profile, shrunk by any
/// active capacity-collapse factor.
pub(crate) fn effective_device(spec: &ClusterSpec, d: usize, cap_factor: f64) -> DeviceProfile {
    if cap_factor < 1.0 {
        let mut dev = spec.devices[d].clone();
        dev.total_mem_bytes = (dev.total_mem_bytes as f64 * cap_factor) as usize;
        dev
    } else {
        spec.devices[d].clone()
    }
}

/// Pick a fresh pending job for an idle device under the dispatch policy.
/// Returns the *position* in `pending`. Admissibility is the all-
/// checkpoint floor against the device's usable capacity; comparator ties
/// resolve by queue position exactly as the original BSP scheduler did
/// (first for FIFO/shortest, last for best-fit).
pub(crate) fn pick_pending(
    schedule: SchedulePolicy,
    pending: &[usize],
    submitted: &[Option<Submitted>],
    jobs: &[JobSpec],
    device: &DeviceProfile,
    usable: usize,
) -> Option<usize> {
    match schedule {
        SchedulePolicy::Fifo => pending
            .iter()
            .position(|j| submitted[*j].as_ref().is_some_and(|s| s.floor <= usable)),
        SchedulePolicy::ShortestPredicted => pending
            .iter()
            .enumerate()
            .filter_map(|(i, &j)| {
                let s = submitted[j].as_ref()?;
                (s.floor <= usable).then(|| (i, jobs[j].predicted_iter_ns(&s.worst, device)))
            })
            .min_by_key(|&(_, predicted)| predicted)
            .map(|(i, _)| i),
        SchedulePolicy::BestFitMemory => pending
            .iter()
            .enumerate()
            .filter_map(|(i, &j)| {
                let s = submitted[j].as_ref()?;
                // Jobs that only fit demoted fill the device to their
                // floor, not their prediction.
                let fill = if s.predicted_peak <= usable {
                    s.predicted_peak
                } else {
                    s.floor
                };
                (s.floor <= usable).then_some((i, fill))
            })
            .max_by_key(|&(_, fill)| fill)
            .map(|(i, _)| i),
    }
}

/// Per-device accumulator snapshot handed to the rollup.
pub(crate) struct DeviceAccum {
    /// Virtual nanoseconds spent executing iterations.
    pub busy_ns: u64,
    /// Jobs that ran to their end here.
    pub jobs_run: usize,
    /// Iterations executed here.
    pub iters: usize,
}

/// Everything a driver accumulated, ready to fold into a
/// [`ClusterReport`]. One struct so the two drivers cannot drift on which
/// pieces feed the rollup.
pub(crate) struct RollupInputs {
    pub outcomes: Vec<Option<JobOutcome>>,
    pub queue_waits: Vec<Option<u64>>,
    pub demoted: Vec<bool>,
    pub placements: Vec<Vec<JobPlacement>>,
    pub migrations: Vec<usize>,
    pub retries: Vec<usize>,
    pub overhead: Vec<u64>,
    /// Virtual arrival instant per job (all zero in BSP mode).
    pub arrival_ns: Vec<u64>,
    /// Virtual completion instant per job (`None` in BSP mode, and for
    /// jobs that never finished).
    pub finish_ns: Vec<Option<u64>>,
    pub events: Vec<crate::events::FleetEvent>,
    pub fleet: FleetStats,
    pub lost: Vec<bool>,
    pub device_stats: Vec<DeviceAccum>,
    pub rounds: usize,
    pub makespan_ns: u64,
}

/// The shared rollup: fold driver state into the final [`ClusterReport`].
/// Queue-wait means, utilization, per-job rows, the SLO tail fold and the
/// JSON-visible spec echoes (mode, arrivals) all live here.
pub(crate) fn finish_report(
    spec: &ClusterSpec,
    ctl: AdmissionController,
    details: &[JobDetail],
    inputs: RollupInputs,
) -> ClusterReport {
    let n_devs = spec.devices.len();
    let RollupInputs {
        outcomes,
        queue_waits,
        demoted,
        placements,
        migrations,
        retries,
        overhead,
        arrival_ns,
        finish_ns,
        events,
        mut fleet,
        lost,
        device_stats,
        rounds,
        makespan_ns,
    } = inputs;

    let busy_ns: u64 = device_stats.iter().map(|s| s.busy_ns).sum();
    let utilization_pct = if makespan_ns > 0 {
        busy_ns as f64 / (makespan_ns as f64 * n_devs as f64) * 100.0
    } else {
        0.0
    };
    let waits: Vec<u64> = queue_waits.iter().filter_map(|w| *w).collect();
    let mean_queue_wait_ns = if waits.is_empty() {
        0
    } else {
        waits.iter().sum::<u64>() / waits.len() as u64
    };
    let max_queue_wait_ns = waits.iter().copied().max().unwrap_or(0);
    fleet.overhead_ns = overhead.iter().sum();

    let jobs: Vec<JobReport> = spec
        .jobs
        .iter()
        .enumerate()
        .map(|(j, job)| {
            let s = &details[j].summary;
            JobReport {
                name: job.name.clone(),
                policy: job.policy.name().to_string(),
                budget_bytes: {
                    let b = job.policy.budget_bytes();
                    (b != usize::MAX).then_some(b)
                },
                device: details[j].device,
                outcome: outcomes[j].clone().unwrap_or(JobOutcome::Rejected),
                demoted: demoted[j],
                iters: s.iters,
                arrival_ns: arrival_ns[j],
                queue_wait_ns: queue_waits[j].unwrap_or(0),
                finish_ns: finish_ns[j],
                total_ns: s.total_ns,
                max_peak_bytes: s.max_peak_bytes,
                oom_iters: s.oom_iters,
                recovered_iters: s.recovered_iters,
                recovery_events: s.recovery_events,
                shuttle_iters: s.shuttle_iters,
                plan_tiers: details[j].plan_tiers,
                migrations: migrations[j],
                retries: retries[j],
                fleet_overhead_ns: overhead[j],
                graph_raw_peak_bytes: details[j].graph_raw_peak_bytes,
                graph_opt_peak_bytes: details[j].graph_opt_peak_bytes,
                admission_reason: details[j].admission_reason.clone(),
                placements: placements[j].clone(),
            }
        })
        .collect();
    fleet.failed_jobs = jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
        .count();
    let iter_latencies: Vec<u64> = details
        .iter()
        .flat_map(|d| d.reports.iter().map(|r| r.time.total_ns()))
        .collect();
    let slo = SloRollup::fold(&jobs, &iter_latencies, makespan_ns);
    ClusterReport {
        schedule: spec.schedule.name().to_string(),
        mode: spec.mode.name().to_string(),
        arrivals: spec.arrivals.clone(),
        rounds,
        makespan_ns,
        busy_ns,
        utilization_pct,
        mean_queue_wait_ns,
        max_queue_wait_ns,
        oom_iters: jobs.iter().map(|j| j.oom_iters).sum(),
        recovered_iters: jobs.iter().map(|j| j.recovered_iters).sum(),
        recovery_events: jobs.iter().map(|j| j.recovery_events).sum(),
        admission: ctl.stats,
        slo,
        fleet,
        fault_plan: spec.faults.clone(),
        events,
        devices: device_stats
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceReport {
                index: i,
                capacity_bytes: spec.devices[i].total_mem_bytes,
                busy_ns: s.busy_ns,
                jobs_run: s.jobs_run,
                iters: s.iters,
                lost: lost[i],
            })
            .collect(),
        jobs,
    }
}
