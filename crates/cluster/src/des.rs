//! The discrete-event (serving-mode) fleet driver.
//!
//! Where [`run_bsp`](crate::scheduler::run_bsp) advances a round clock in
//! lockstep, `run_event` advances a virtual-nanosecond clock through a
//! seed-deterministic event queue: job **arrivals** (drawn from the
//! spec's [`ArrivalProcess`](mimose_data::ArrivalProcess)), per-iteration
//! **completions**, timed device **fault transitions** and displaced-job
//! **backoff expiries**. Dispatch happens only at event boundaries, so
//! queueing, SLO tails and overload behavior become visible — the serving
//! world the BSP batch world cannot express.
//!
//! # Determinism
//!
//! The loop is serial by construction: events pop in `(time, class,
//! push-sequence)` order from a binary heap, every batch of same-instant
//! events is processed before one triage + dispatch pass runs, and all
//! randomness (arrival gaps, chaos injection) is seeded. Two runs of the
//! same spec produce byte-identical reports, and the `threads` knob is
//! documented as a no-op here, so thread-count independence is trivial.
//!
//! # Fault semantics
//!
//! Timed faults ([`TimedDeviceFault`](mimose_chaos::TimedDeviceFault))
//! take effect at *transition events*, but a device that dies
//! mid-iteration only surrenders its job at the iteration's **completion
//! boundary** — the same place a real executor could first observe the
//! loss and the only boundary a [`SessionCheckpoint`] can capture. The
//! displaced job then follows the BSP protocol verbatim (checkpoint →
//! requeue → exponential backoff in virtual nanoseconds → migrate through
//! re-admission), with every step a timestamped
//! [`FleetEvent`](crate::FleetEvent).

use crate::admission::AdmissionController;
use crate::error::ClusterError;
use crate::events::{
    FleetEvent, FleetEventKind, BACKOFF_BASE_NS, CHECKPOINT_COST_NS, RESTORE_COST_NS,
};
use crate::protocol::{self, DeviceAccum, RollupInputs};
use crate::report::{FleetStats, JobOutcome, JobPlacement};
use crate::scheduler::{ClusterOutcome, ClusterSpec, JobDetail};
use crate::spec::validate;
use crate::AdmissionDecision;
use mimose_chaos::DeviceCondition;
use mimose_exec::{RecoveryConfig, Session, SessionCheckpoint};
use mimose_runtime::IterationReport;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A queue entry's payload. The derived `Ord` is never reached in heap
/// comparisons (the push sequence number before it is unique) but keeps
/// the tuple totally ordered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// The fault plan crosses a timed boundary: re-observe every device.
    Transition,
    /// The in-flight iteration on a device reaches its boundary.
    Finish { device: usize },
    /// A job enters the fleet.
    Arrive { job: usize },
    /// A displaced job's backoff window closes (pure wakeup; the dispatch
    /// pass re-checks eligibility by time).
    Ready,
}

impl Ev {
    /// Tie-break class for same-instant events: fault transitions are
    /// observed first (so a completion at the same instant already sees
    /// the device down), then completions free devices, then arrivals
    /// queue, then wakeups — and the batch's single dispatch pass sees the
    /// union.
    fn class(&self) -> u8 {
        match self {
            Ev::Transition => 0,
            Ev::Finish { .. } => 1,
            Ev::Arrive { .. } => 2,
            Ev::Ready => 3,
        }
    }
}

/// Min-heap of `(t_ns, class, push_seq, payload)` with a monotone push
/// sequence so ordering is total and insertion-stable.
#[derive(Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u8, u64, Ev)>>,
    seq: u64,
}

impl EventQueue {
    fn push(&mut self, t_ns: u64, ev: Ev) {
        self.heap.push(Reverse((t_ns, ev.class(), self.seq, ev)));
        self.seq += 1;
    }

    /// Pop every event at the earliest pending instant, in class/sequence
    /// order. Events pushed *during* a batch — even at the same instant —
    /// form a later batch.
    fn pop_batch(&mut self) -> Option<(u64, Vec<Ev>)> {
        let Reverse((t, _, _, first)) = self.heap.pop()?;
        let mut batch = vec![first];
        while self.heap.peek().is_some_and(|Reverse((pt, ..))| *pt == t) {
            if let Some(Reverse((_, _, _, ev))) = self.heap.pop() {
                batch.push(ev);
            }
        }
        Some((t, batch))
    }
}

/// The step a session executed eagerly at dispatch, held until its
/// completion event fires: the pre-step peak prediction and the outcome.
type StepResult = (
    Option<usize>,
    Result<IterationReport, mimose_exec::ExecError>,
);

/// One job executing on a device, with its in-flight iteration.
struct Running<'a> {
    job: usize,
    session: Session<'a>,
    remaining: usize,
    reports: Vec<IterationReport>,
    seg_ns: u64,
    seg_iters: usize,
    inflight: Option<StepResult>,
}

/// A checkpointed job waiting out its backoff window (virtual ns).
struct Displaced {
    job: usize,
    checkpoint: SessionCheckpoint,
    remaining: usize,
    ready_ns: u64,
    from_device: usize,
}

#[derive(Default)]
struct DeviceState<'a> {
    busy_ns: u64,
    jobs_run: usize,
    iters: usize,
    running: Option<Running<'a>>,
}

/// Eagerly execute the next iteration and schedule its completion event.
/// Exec errors schedule a zero-length completion so the failure settles
/// through the same boundary path.
fn advance(run: &mut Running, q: &mut EventQueue, t: u64, device: usize) {
    let predicted = run.session.predicted_peak_bytes().ok();
    let outcome = run.session.step();
    let dt = match &outcome {
        Ok(report) => report.time.total_ns(),
        Err(_) => 0,
    };
    run.inflight = Some((predicted, outcome));
    q.push(t.saturating_add(dt), Ev::Finish { device });
}

/// Run the whole spec to completion under the discrete-event clock. The
/// same per-job failure philosophy as BSP applies: a run that starts
/// always yields a report, with every job settled by an explicit outcome
/// and a terminal event on the chain.
///
/// # Errors
///
/// [`ClusterError`] when the spec cannot start at all (empty device pool,
/// zero-iteration job).
#[allow(clippy::too_many_lines)]
pub(crate) fn run_event(spec: &ClusterSpec) -> Result<ClusterOutcome, ClusterError> {
    validate(spec)?;
    let n_jobs = spec.jobs.len();
    let n_devs = spec.devices.len();

    let mut ctl = AdmissionController {
        headroom: spec.headroom,
        ..AdmissionController::default()
    };
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n_jobs];
    let mut details: Vec<JobDetail> = spec
        .jobs
        .iter()
        .map(|j| JobDetail {
            name: j.name.clone(),
            ..JobDetail::default()
        })
        .collect();
    let mut queue_waits: Vec<Option<u64>> = vec![None; n_jobs];
    let mut demoted: Vec<bool> = vec![false; n_jobs];
    let mut placements: Vec<Vec<JobPlacement>> = vec![Vec::new(); n_jobs];
    let mut migrations = vec![0usize; n_jobs];
    let mut retries = vec![0usize; n_jobs];
    let mut overhead = vec![0u64; n_jobs];
    let mut finish_ns: Vec<Option<u64>> = vec![None; n_jobs];
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut fleet = FleetStats {
        max_retries: spec.max_retries,
        ..FleetStats::default()
    };

    // Submission runs the same pass as BSP, up front: profiles, floors,
    // certificates. Jobs it settles (unprofilable, floor over every
    // device) replay their terminal event when their arrival fires, so
    // the chain still accounts for them at the right virtual instant.
    let mut submitted = protocol::submit_jobs(spec, &mut ctl, &mut outcomes, &mut details);

    let arrival_ns = spec.arrivals.arrival_ns(n_jobs);
    let mut q = EventQueue::default();
    for (j, &t) in arrival_ns.iter().enumerate() {
        q.push(t, Ev::Arrive { job: j });
    }
    // Seed the fault-transition chain; each transition schedules the next,
    // so the walk covers exactly the plan's timed boundaries.
    q.push(0, Ev::Transition);

    let mut pending: Vec<usize> = Vec::new();
    let mut displaced: Vec<Displaced> = Vec::new();
    let mut devices: Vec<DeviceState> = (0..n_devs).map(|_| DeviceState::default()).collect();
    let mut last_cond: Vec<DeviceCondition> = vec![DeviceCondition::Up; n_devs];
    let mut lost: Vec<bool> = vec![false; n_devs];
    let mut epoch = 0usize;
    let mut dispatch_seq = 0usize;
    let mut last_t = 0u64;

    while let Some((t, batch)) = q.pop_batch() {
        last_t = t;
        for ev in batch {
            match ev {
                Ev::Transition => {
                    let conds: Vec<DeviceCondition> = (0..n_devs)
                        .map(|d| spec.faults.device_condition_at_ns(d, t))
                        .collect();
                    for d in 0..n_devs {
                        if conds[d] == last_cond[d] {
                            continue;
                        }
                        match conds[d] {
                            DeviceCondition::Up => events.push(FleetEvent {
                                round: epoch,
                                at_ns: t,
                                kind: FleetEventKind::DeviceUp { device: d },
                                cost_ns: 0,
                            }),
                            DeviceCondition::Down | DeviceCondition::Lost => {
                                let until_round = if conds[d] == DeviceCondition::Lost {
                                    lost[d] = true;
                                    fleet.devices_lost += 1;
                                    None
                                } else {
                                    // Walk the timed boundaries to the
                                    // instant this device returns.
                                    let mut probe = t;
                                    let mut until = None;
                                    while let Some(b) = spec.faults.next_transition_after_ns(probe)
                                    {
                                        match spec.faults.device_condition_at_ns(d, b) {
                                            DeviceCondition::Up => {
                                                until = Some(b as usize);
                                                break;
                                            }
                                            DeviceCondition::Lost => break,
                                            DeviceCondition::Down => probe = b,
                                        }
                                    }
                                    until
                                };
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::DeviceDown {
                                        device: d,
                                        until_round,
                                    },
                                    cost_ns: 0,
                                });
                                // The in-flight job (if any) keeps running
                                // to its iteration boundary; displacement
                                // happens at its completion event.
                            }
                        }
                        last_cond[d] = conds[d];
                    }
                    if let Some(next) = spec.faults.next_transition_after_ns(t) {
                        q.push(next, Ev::Transition);
                    }
                }
                Ev::Finish { device: d } => {
                    let Some(mut run) = devices[d].running.take() else {
                        continue; // stale wakeup; nothing in flight here
                    };
                    let j = run.job;
                    let Some((predicted, outcome)) = run.inflight.take() else {
                        outcomes[j] = Some(JobOutcome::Failed(
                            "internal: completion fired with no in-flight step".into(),
                        ));
                        continue;
                    };
                    let report = match outcome {
                        Ok(report) => report,
                        Err(e) => {
                            let reason = e.to_string();
                            events.push(FleetEvent {
                                round: epoch,
                                at_ns: t,
                                kind: FleetEventKind::Fail {
                                    job: j,
                                    reason: reason.clone(),
                                },
                                cost_ns: 0,
                            });
                            outcomes[j] = Some(JobOutcome::Failed(reason));
                            devices[d].jobs_run += 1;
                            if run.seg_iters > 0 || run.seg_ns > 0 {
                                placements[j].push(JobPlacement {
                                    device: d,
                                    busy_ns: run.seg_ns,
                                    iters: run.seg_iters,
                                });
                            }
                            details[j].records.extend(run.session.take_records());
                            details[j].summary = run.session.summary().clone();
                            details[j].plan_tiers = run.session.policy().plan_tier_stats();
                            details[j].reports.extend(run.reports);
                            continue;
                        }
                    };
                    // Commit the iteration at its boundary.
                    let dt = report.time.total_ns();
                    devices[d].busy_ns += dt;
                    devices[d].iters += 1;
                    run.seg_ns += dt;
                    run.seg_iters += 1;
                    if let Some(p) = predicted {
                        ctl.stats.score(p, report.peak_bytes);
                    }
                    run.reports.push(report);
                    run.remaining = run.remaining.saturating_sub(1);
                    if run.remaining == 0 {
                        let outcome = if migrations[j] > 0 {
                            JobOutcome::Migrated
                        } else {
                            JobOutcome::Completed
                        };
                        events.push(FleetEvent {
                            round: epoch,
                            at_ns: t,
                            kind: FleetEventKind::Complete { job: j, device: d },
                            cost_ns: 0,
                        });
                        outcomes[j] = Some(outcome);
                        finish_ns[j] = Some(t);
                        devices[d].jobs_run += 1;
                        if run.seg_iters > 0 || run.seg_ns > 0 {
                            placements[j].push(JobPlacement {
                                device: d,
                                busy_ns: run.seg_ns,
                                iters: run.seg_iters,
                            });
                        }
                        details[j].records.extend(run.session.take_records());
                        details[j].summary = run.session.summary().clone();
                        details[j].plan_tiers = run.session.policy().plan_tier_stats();
                        details[j].reports.extend(std::mem::take(&mut run.reports));
                        continue;
                    }
                    match spec.faults.device_condition_at_ns(d, t) {
                        DeviceCondition::Up => {
                            // Next iteration starts immediately.
                            advance(&mut run, &mut q, t, d);
                            devices[d].running = Some(run);
                        }
                        DeviceCondition::Down | DeviceCondition::Lost => {
                            // The device died under the job: displace at
                            // this boundary, BSP-protocol-style.
                            if run.seg_iters > 0 || run.seg_ns > 0 {
                                placements[j].push(JobPlacement {
                                    device: d,
                                    busy_ns: run.seg_ns,
                                    iters: run.seg_iters,
                                });
                            }
                            details[j].reports.extend(run.reports);
                            if retries[j] + 1 > spec.max_retries {
                                let reason = format!(
                                    "displaced {} times; retry budget {} exhausted",
                                    retries[j] + 1,
                                    spec.max_retries
                                );
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::Fail {
                                        job: j,
                                        reason: reason.clone(),
                                    },
                                    cost_ns: 0,
                                });
                                outcomes[j] = Some(JobOutcome::Failed(reason));
                                let mut session = run.session;
                                details[j].records.extend(session.take_records());
                                details[j].summary = session.summary().clone();
                                details[j].plan_tiers = session.policy().plan_tier_stats();
                            } else {
                                retries[j] += 1;
                                let checkpoint = run.session.checkpoint();
                                overhead[j] += CHECKPOINT_COST_NS;
                                fleet.checkpoints += 1;
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::Checkpoint {
                                        job: j,
                                        device: d,
                                        cursor: checkpoint.cursor(),
                                    },
                                    cost_ns: CHECKPOINT_COST_NS,
                                });
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::Requeue {
                                        job: j,
                                        retries: retries[j],
                                    },
                                    cost_ns: 0,
                                });
                                let ready_ns =
                                    t.saturating_add(BACKOFF_BASE_NS << (retries[j] - 1).min(32));
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::Backoff {
                                        job: j,
                                        until_round: ready_ns as usize,
                                    },
                                    cost_ns: 0,
                                });
                                q.push(ready_ns, Ev::Ready);
                                displaced.push(Displaced {
                                    job: j,
                                    checkpoint,
                                    remaining: run.remaining,
                                    ready_ns,
                                    from_device: d,
                                });
                            }
                        }
                    }
                }
                Ev::Arrive { job: j } => {
                    events.push(FleetEvent {
                        round: epoch,
                        at_ns: t,
                        kind: FleetEventKind::Arrive { job: j },
                        cost_ns: 0,
                    });
                    match &outcomes[j] {
                        Some(JobOutcome::Rejected) => {
                            // Settled at submission; replay the verdict on
                            // the chain at the arrival instant.
                            let reason = details[j]
                                .admission_reason
                                .clone()
                                .unwrap_or_else(|| "rejected at submission".to_string());
                            events.push(FleetEvent {
                                round: epoch,
                                at_ns: t,
                                kind: FleetEventKind::Reject { job: j, reason },
                                cost_ns: 0,
                            });
                        }
                        Some(JobOutcome::Failed(reason)) => {
                            events.push(FleetEvent {
                                round: epoch,
                                at_ns: t,
                                kind: FleetEventKind::Fail {
                                    job: j,
                                    reason: reason.clone(),
                                },
                                cost_ns: 0,
                            });
                        }
                        Some(_) => {}
                        None => {
                            if spec.queue_limit.is_some_and(|limit| pending.len() >= limit) {
                                // The overload valve: bounded queue full,
                                // shed on arrival rather than queue into an
                                // SLO-busting backlog.
                                let reason = format!(
                                    "queue full on arrival ({} jobs waiting, limit {})",
                                    pending.len(),
                                    spec.queue_limit.unwrap_or(0)
                                );
                                events.push(FleetEvent {
                                    round: epoch,
                                    at_ns: t,
                                    kind: FleetEventKind::Shed {
                                        job: j,
                                        reason: reason.clone(),
                                    },
                                    cost_ns: 0,
                                });
                                fleet.shed_jobs += 1;
                                outcomes[j] = Some(JobOutcome::Shed(reason));
                            } else {
                                pending.push(j);
                            }
                        }
                    }
                }
                Ev::Ready => {} // pure wakeup; dispatch below re-checks
            }
        }

        // --- Triage: shed queued work the degraded pool can never place,
        // lowest priority first — identical policy to BSP. Down devices
        // still count (they come back); only lost ones don't. ---
        let alive_usable = (0..n_devs)
            .filter(|&d| spec.faults.device_condition_at_ns(d, t) != DeviceCondition::Lost)
            .map(|d| protocol::usable_bytes(&spec.devices[d], spec.headroom))
            .max()
            .unwrap_or(0);
        let unplaceable = |j: usize| submitted[j].as_ref().is_none_or(|s| s.floor > alive_usable);
        if pending.iter().any(|&j| unplaceable(j)) || displaced.iter().any(|x| unplaceable(x.job)) {
            let mut to_shed: Vec<(usize, Option<Displaced>)> = Vec::new();
            let mut kept = Vec::with_capacity(displaced.len());
            for x in displaced.drain(..) {
                if unplaceable(x.job) {
                    to_shed.push((x.job, Some(x)));
                } else {
                    kept.push(x);
                }
            }
            displaced = kept;
            to_shed.extend(
                pending
                    .iter()
                    .copied()
                    .filter(|&j| unplaceable(j))
                    .map(|j| (j, None)),
            );
            pending.retain(|&j| !unplaceable(j));
            to_shed.sort_by_key(|(j, _)| (spec.jobs[*j].priority, *j));
            for (j, dsp) in to_shed {
                let reason = if alive_usable == 0 {
                    "no surviving device in the pool".to_string()
                } else {
                    format!(
                        "all-checkpoint floor exceeds every surviving device's usable \
                         capacity ({alive_usable} B)"
                    )
                };
                events.push(FleetEvent {
                    round: epoch,
                    at_ns: t,
                    kind: FleetEventKind::Shed {
                        job: j,
                        reason: reason.clone(),
                    },
                    cost_ns: 0,
                });
                fleet.shed_jobs += 1;
                outcomes[j] = Some(JobOutcome::Shed(reason));
                if let Some(dsp) = dsp {
                    let (summary, records, policy) = dsp.checkpoint.into_evidence();
                    details[j].summary = summary;
                    details[j].records.extend(records);
                    details[j].plan_tiers = policy.plan_tier_stats();
                }
            }
        }

        // --- Dispatch pass: idle, up devices pick work in index order.
        // Displaced jobs outrank fresh arrivals, exactly as in BSP. ---
        #[allow(clippy::needless_range_loop)] // devices[d] is re-borrowed mutably mid-body
        for d in 0..n_devs {
            if devices[d].running.is_some()
                || spec.faults.device_condition_at_ns(d, t) != DeviceCondition::Up
            {
                continue;
            }
            let cap_factor = spec.faults.capacity_factor_at_ns(d, t);
            let dev_eff = protocol::effective_device(spec, d, cap_factor);
            let usable = protocol::usable_bytes(&dev_eff, spec.headroom);

            // 1. A ready displaced job that fits?
            let pick = displaced
                .iter()
                .enumerate()
                .filter(|(_, x)| {
                    x.ready_ns <= t && submitted[x.job].as_ref().is_some_and(|s| s.floor <= usable)
                })
                .min_by_key(|(pos, x)| (Reverse(spec.jobs[x.job].priority), *pos))
                .map(|(pos, _)| pos);
            if let Some(pos) = pick {
                let dsp = displaced.remove(pos);
                let j = dsp.job;
                let Some(sub) = submitted[j].as_ref() else {
                    outcomes[j] = Some(JobOutcome::Failed(
                        "internal: displaced job lost its submission record".into(),
                    ));
                    continue;
                };
                let decision = ctl.decide_certified(
                    sub.predicted_peak,
                    &sub.worst,
                    &dev_eff,
                    sub.certificate.as_ref(),
                );
                if details[j].admission_reason.is_none() {
                    details[j].admission_reason =
                        decision.reason(sub.predicted_peak, usable).map(|r| {
                            match &sub.graph_evidence {
                                Some(g) => format!("{r}; {g}"),
                                None => r,
                            }
                        });
                }
                let recovery: Option<RecoveryConfig> = match decision {
                    AdmissionDecision::Admit => spec.jobs[j].recovery.clone(),
                    AdmissionDecision::Demote { .. } => {
                        demoted[j] = true;
                        Some(spec.jobs[j].recovery.clone().unwrap_or_default())
                    }
                    AdmissionDecision::Reject { .. } => {
                        let reason = "re-admission rejected below the floor".to_string();
                        events.push(FleetEvent {
                            round: epoch,
                            at_ns: t,
                            kind: FleetEventKind::Fail {
                                job: j,
                                reason: reason.clone(),
                            },
                            cost_ns: 0,
                        });
                        outcomes[j] = Some(JobOutcome::Failed(reason));
                        continue;
                    }
                };
                let cursor = dsp.checkpoint.cursor();
                let mut builder = Session::builder(&spec.jobs[j].model, &spec.jobs[j].dataset)
                    .device(spec.devices[d].clone())
                    .record(spec.record)
                    .resume(dsp.checkpoint);
                if let Some(cfg) = recovery {
                    builder = builder.recovery(cfg);
                }
                if let Some(inj) = spec.faults.injector_for(d) {
                    builder = builder.chaos(inj);
                }
                match builder.build() {
                    Ok(session) => {
                        details[j].device = Some(d);
                        overhead[j] += RESTORE_COST_NS;
                        migrations[j] += 1;
                        fleet.migrations += 1;
                        events.push(FleetEvent {
                            round: epoch,
                            at_ns: t,
                            kind: FleetEventKind::Migrate {
                                job: j,
                                from: dsp.from_device,
                                to: d,
                                cursor,
                                seq: dispatch_seq,
                            },
                            cost_ns: RESTORE_COST_NS,
                        });
                        dispatch_seq += 1;
                        let mut run = Running {
                            job: j,
                            session,
                            remaining: dsp.remaining,
                            reports: Vec::with_capacity(dsp.remaining),
                            seg_ns: 0,
                            seg_iters: 0,
                            inflight: None,
                        };
                        advance(&mut run, &mut q, t, d);
                        devices[d].running = Some(run);
                    }
                    Err(e) => {
                        let reason = e.to_string();
                        events.push(FleetEvent {
                            round: epoch,
                            at_ns: t,
                            kind: FleetEventKind::Fail {
                                job: j,
                                reason: reason.clone(),
                            },
                            cost_ns: 0,
                        });
                        outcomes[j] = Some(JobOutcome::Failed(reason));
                    }
                }
                continue;
            }

            // 2. Otherwise a fresh arrival under the dispatch policy.
            let Some(pos) = protocol::pick_pending(
                spec.schedule,
                &pending,
                &submitted,
                &spec.jobs,
                &spec.devices[d],
                usable,
            ) else {
                continue;
            };
            let j = pending.remove(pos);
            let Some(sub) = submitted[j].as_mut() else {
                outcomes[j] = Some(JobOutcome::Failed(
                    "internal: picked job lost its submission record".into(),
                ));
                continue;
            };
            let decision = ctl.decide_certified(
                sub.predicted_peak,
                &sub.worst,
                &dev_eff,
                sub.certificate.as_ref(),
            );
            if details[j].admission_reason.is_none() {
                details[j].admission_reason =
                    decision.reason(sub.predicted_peak, usable).map(|r| {
                        match &sub.graph_evidence {
                            Some(g) => format!("{r}; {g}"),
                            None => r,
                        }
                    });
            }
            let recovery: Option<RecoveryConfig> = match decision {
                AdmissionDecision::Admit => spec.jobs[j].recovery.clone(),
                AdmissionDecision::Demote { .. } => {
                    demoted[j] = true;
                    Some(spec.jobs[j].recovery.clone().unwrap_or_default())
                }
                AdmissionDecision::Reject { .. } => {
                    outcomes[j] = Some(JobOutcome::Rejected);
                    continue;
                }
            };
            let Some(policy) = sub.policy.take() else {
                outcomes[j] = Some(JobOutcome::Failed(
                    "internal: job policy consumed before dispatch".into(),
                ));
                continue;
            };
            let mut builder = Session::builder(&spec.jobs[j].model, &spec.jobs[j].dataset)
                .policy_boxed(policy)
                .device(spec.devices[d].clone())
                .seed(spec.jobs[j].seed)
                .record(spec.record);
            if let Some(cfg) = recovery {
                builder = builder.recovery(cfg);
            }
            if let Some(inj) = spec.faults.injector_for(d) {
                builder = builder.chaos(inj);
            }
            match builder.build() {
                Ok(session) => {
                    queue_waits[j] = Some(t.saturating_sub(arrival_ns[j]));
                    details[j].device = Some(d);
                    details[j].dispatch_round = Some(epoch);
                    details[j].dispatch_seq = Some(dispatch_seq);
                    events.push(FleetEvent {
                        round: epoch,
                        at_ns: t,
                        kind: FleetEventKind::Dispatch {
                            job: j,
                            device: d,
                            seq: dispatch_seq,
                        },
                        cost_ns: 0,
                    });
                    dispatch_seq += 1;
                    let mut run = Running {
                        job: j,
                        session,
                        remaining: spec.jobs[j].iters,
                        reports: Vec::with_capacity(spec.jobs[j].iters),
                        seg_ns: 0,
                        seg_iters: 0,
                        inflight: None,
                    };
                    advance(&mut run, &mut q, t, d);
                    devices[d].running = Some(run);
                }
                Err(e) => {
                    let reason = e.to_string();
                    events.push(FleetEvent {
                        round: epoch,
                        at_ns: t,
                        kind: FleetEventKind::Fail {
                            job: j,
                            reason: reason.clone(),
                        },
                        cost_ns: 0,
                    });
                    outcomes[j] = Some(JobOutcome::Failed(reason));
                }
            }
        }
        ctl.stats.deferred_rounds += pending.len() + displaced.len();
        epoch += 1;
    }

    // The queue drained with work still waiting: no running iteration, no
    // upcoming transition, no backoff wakeup — there is no event that
    // could ever place these jobs. Shed them explicitly, lowest priority
    // first, at the final instant.
    if !pending.is_empty() || !displaced.is_empty() {
        let mut stragglers: Vec<(usize, Option<Displaced>)> = pending
            .drain(..)
            .map(|j| (j, None))
            .chain(displaced.drain(..).map(|x| (x.job, Some(x))))
            .collect();
        stragglers.sort_by_key(|(j, _)| (spec.jobs[*j].priority, *j));
        for (j, dsp) in stragglers {
            let reason = "fleet quiesced with no placement path for this job".to_string();
            events.push(FleetEvent {
                round: epoch,
                at_ns: last_t,
                kind: FleetEventKind::Shed {
                    job: j,
                    reason: reason.clone(),
                },
                cost_ns: 0,
            });
            fleet.shed_jobs += 1;
            outcomes[j] = Some(JobOutcome::Shed(reason));
            if let Some(dsp) = dsp {
                let (summary, records, policy) = dsp.checkpoint.into_evidence();
                details[j].summary = summary;
                details[j].records.extend(records);
                details[j].plan_tiers = policy.plan_tier_stats();
            }
        }
        epoch += 1;
    }

    // Makespan is the last instant anything *happened* — the maximum event
    // timestamp — not the last instant the heap held (stale backoff
    // wakeups past the end of useful work must not inflate it). Every job
    // end emits a terminal event, so coverage is guaranteed.
    let makespan_ns = events.iter().map(|e| e.at_ns).max().unwrap_or(0);
    let device_stats = devices
        .iter()
        .map(|s| DeviceAccum {
            busy_ns: s.busy_ns,
            jobs_run: s.jobs_run,
            iters: s.iters,
        })
        .collect();
    let report = protocol::finish_report(
        spec,
        ctl,
        &details,
        RollupInputs {
            outcomes,
            queue_waits,
            demoted,
            placements,
            migrations,
            retries,
            overhead,
            arrival_ns,
            finish_ns,
            events,
            fleet,
            lost,
            device_stats,
            rounds: epoch,
            makespan_ns,
        },
    );
    Ok(ClusterOutcome { report, details })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{DevicePool, Workload};
    use crate::{Cluster, Mode};
    use mimose_chaos::{FleetFaultPlan, TimedDeviceFault};
    use mimose_data::ArrivalProcess;

    fn serve(arrivals: ArrivalProcess) -> crate::ClusterBuilder {
        Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(2))
            .mode(Mode::EventDriven)
            .arrivals(arrivals)
    }

    #[test]
    fn event_mode_completes_and_replays_byte_identically() {
        let mk = || serve(ArrivalProcess::poisson(400_000, 42));
        let a = mk().run().expect("runs");
        let b = mk().run().expect("runs");
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.report.mode, "event-driven");
        for job in &a.report.jobs {
            assert_eq!(job.outcome, JobOutcome::Completed, "{}", job.name);
        }
        // The chain settles every job: arrive, dispatch, complete.
        let tags: Vec<_> = a.report.events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags.iter().filter(|t| **t == "arrive").count(), 8);
        assert_eq!(tags.iter().filter(|t| **t == "dispatch").count(), 8);
        assert_eq!(tags.iter().filter(|t| **t == "complete").count(), 8);
    }

    #[test]
    fn event_timestamps_and_makespan_are_consistent() {
        let outcome = serve(ArrivalProcess::poisson(400_000, 7))
            .run()
            .expect("runs");
        let r = &outcome.report;
        for w in r.events.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "event time ran backwards");
        }
        let max_at = r.events.iter().map(|e| e.at_ns).max().unwrap();
        assert_eq!(r.makespan_ns, max_at);
        // Queue waits re-derive from the chain.
        for job in &r.jobs {
            let arrive = r
                .events
                .iter()
                .find(|e| e.kind.tag() == "arrive" && e.kind.job() == Some(job_index(r, job)))
                .expect("every job arrives");
            let dispatch = r
                .events
                .iter()
                .find(|e| e.kind.tag() == "dispatch" && e.kind.job() == Some(job_index(r, job)));
            if let Some(dispatch) = dispatch {
                assert_eq!(dispatch.at_ns - arrive.at_ns, job.queue_wait_ns);
                assert_eq!(arrive.at_ns, job.arrival_ns);
            }
        }
    }

    fn job_index(r: &crate::ClusterReport, job: &crate::JobReport) -> usize {
        r.jobs.iter().position(|x| x.name == job.name).unwrap()
    }

    #[test]
    fn staggered_arrivals_shrink_early_queue_waits() {
        // Immediate arrivals pile all 8 jobs onto 2 devices at t=0: six of
        // them wait. Wide Poisson gaps let devices drain between arrivals.
        let packed = serve(ArrivalProcess::Immediate).run().expect("runs");
        let spread = serve(ArrivalProcess::poisson(50_000_000, 3))
            .run()
            .expect("runs");
        assert!(
            spread.report.slo.queue_wait_p95_ns <= packed.report.slo.queue_wait_p95_ns,
            "spread arrivals p95 wait {} > packed {}",
            spread.report.slo.queue_wait_p95_ns,
            packed.report.slo.queue_wait_p95_ns
        );
    }

    #[test]
    fn bounded_queue_sheds_on_arrival_under_overload() {
        let outcome = Cluster::builder()
            .devices(DevicePool::v100(1))
            .workload(Workload::mixed(2))
            .mode(Mode::EventDriven)
            .arrivals(ArrivalProcess::Immediate)
            .queue_limit(Some(2))
            .run()
            .expect("runs");
        let r = &outcome.report;
        assert!(r.fleet.shed_jobs > 0, "no sheds under a full queue");
        assert!(r.slo.shed_rate_pct > 0.0);
        // Every job settled: no silent drops even under overload.
        for job in &r.jobs {
            assert!(
                job.outcome.finished()
                    || matches!(job.outcome, JobOutcome::Shed(_) | JobOutcome::Rejected),
                "{}: {:?}",
                job.name,
                job.outcome
            );
        }
        let shed_reason = r
            .events
            .iter()
            .find_map(|e| match &e.kind {
                FleetEventKind::Shed { reason, .. } => Some(reason.clone()),
                _ => None,
            })
            .expect("shed event recorded");
        assert!(shed_reason.contains("queue full"), "{shed_reason}");
    }

    #[test]
    fn timed_device_loss_migrates_at_the_iteration_boundary() {
        // Device 1 of 2 is lost early; its in-flight job must checkpoint
        // at its boundary, back off in virtual ns, and migrate to device 0.
        let faults = FleetFaultPlan::none(0)
            .with_timed_fault(1, TimedDeviceFault::Lost { at_ns: 1_000_000 });
        let outcome = Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(3))
            .mode(Mode::EventDriven)
            .faults(faults)
            .run()
            .expect("runs");
        let r = &outcome.report;
        assert_eq!(r.fleet.devices_lost, 1);
        assert!(r.devices[1].lost);
        assert!(r.fleet.migrations >= 1);
        assert_eq!(r.fleet.checkpoints, r.fleet.migrations);
        assert!(
            r.jobs.iter().all(|j| j.outcome.finished()),
            "{:?}",
            r.jobs
                .iter()
                .map(|j| (&j.name, &j.outcome))
                .collect::<Vec<_>>()
        );
        let kinds: Vec<_> = r.events.iter().map(|e| e.kind.tag()).collect();
        for k in ["device-down", "checkpoint", "requeue", "backoff", "migrate"] {
            assert!(kinds.contains(&k), "missing {k} in {kinds:?}");
        }
        // Migrated jobs carry their overhead attribution, as in BSP.
        for j in r.jobs.iter().filter(|j| j.migrations > 0) {
            assert_eq!(
                j.fleet_overhead_ns,
                (CHECKPOINT_COST_NS + RESTORE_COST_NS) * j.migrations as u64
            );
        }
    }

    #[test]
    fn transient_timed_outage_returns_the_device() {
        let faults = FleetFaultPlan::none(0).with_timed_fault(
            0,
            TimedDeviceFault::Down {
                at_ns: 500_000,
                duration_ns: 2_000_000,
            },
        );
        let outcome = Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(3))
            .mode(Mode::EventDriven)
            .faults(faults)
            .run()
            .expect("runs");
        let r = &outcome.report;
        assert_eq!(r.fleet.devices_lost, 0);
        assert!(!r.devices[0].lost);
        let kinds: Vec<_> = r.events.iter().map(|e| e.kind.tag()).collect();
        assert!(kinds.contains(&"device-down"));
        assert!(kinds.contains(&"device-up"));
        // The down event names the return instant in virtual ns.
        let down = r.events.iter().find_map(|e| match e.kind {
            FleetEventKind::DeviceDown {
                device: 0,
                until_round,
            } => Some(until_round),
            _ => None,
        });
        assert_eq!(down, Some(Some(2_500_000)));
        assert!(r.jobs.iter().all(|j| j.outcome.finished()));
    }
}
