//! Admission control: decide whether a job's next iteration fits a device
//! *before* dispatching it, using the policy's predicted peak and the
//! residency engine's what-if queries — the fleet-level analogue of the
//! planner's per-iteration budget check.

use mimose_models::ModelProfile;
use mimose_planner::memory_model::min_feasible_budget;
use mimose_simgpu::DeviceProfile;
use mimose_verify::SafetyCertificate;

/// What the controller decided for one (job, device) pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The predicted peak fits under the device's headroom-discounted
    /// capacity: dispatch as-is.
    Admit,
    /// The prediction exceeds capacity but checkpointing more can bring
    /// the peak under it (per the residency model): dispatch with the
    /// recovery ladder armed so in-place demotion enforces the fit.
    Demote {
        /// The analytic peak the all-checkpoint configuration needs —
        /// the floor demotion can reach.
        floor: usize,
    },
    /// Even the all-checkpoint floor exceeds the device: the job can never
    /// run here.
    Reject {
        /// Bytes the job's minimum configuration needs.
        needed: usize,
        /// Bytes the device offers.
        capacity: usize,
    },
}

impl AdmissionDecision {
    /// Human-readable explanation of a non-trivial decision, for the
    /// fleet report: *why* a job was demoted or rejected, with the
    /// concrete numbers the controller compared. `None` for a plain
    /// admit. `predicted_peak` and `usable` are the values the decision
    /// was made against.
    #[must_use]
    pub fn reason(&self, predicted_peak: usize, usable: usize) -> Option<String> {
        match self {
            AdmissionDecision::Admit => None,
            AdmissionDecision::Demote { floor } => Some(format!(
                "predicted peak {predicted_peak} B exceeds usable capacity {usable} B; \
                 dispatched with the recovery ladder armed toward the \
                 {floor} B all-checkpoint floor"
            )),
            AdmissionDecision::Reject { needed, capacity } => Some(format!(
                "all-checkpoint floor {needed} B exceeds device capacity {capacity} B; \
                 no plan can ever fit this job here"
            )),
        }
    }
}

/// Running tally of admission outcomes and prediction quality — the
/// "admission accuracy" block of the cluster report.
#[derive(Debug, Clone, Default)]
pub struct AdmissionStats {
    /// Iterations dispatched on a plain Admit.
    pub admitted: usize,
    /// The subset of `admitted` backed by a static safety certificate: the
    /// verifier's sound peak bound (not just the policy's point prediction)
    /// fits the device, so the admit can never be contradicted by any input
    /// size the certificate's bucket covers.
    pub verified_admits: usize,
    /// Iterations dispatched with demotion armed.
    pub demoted: usize,
    /// (job, device) pairings rejected outright.
    pub rejected: usize,
    /// Job-rounds spent waiting because no device was free or admissible.
    pub deferred_rounds: usize,
    /// Predictions scored against an executed peak.
    pub predictions: usize,
    /// Predictions within ±10 % of the executed peak.
    pub within_10pct: usize,
    /// Sum of |predicted − actual| / actual over scored predictions,
    /// in 1e-4 units (kept integral so reports serialize exactly).
    pub abs_rel_err_sum_e4: u64,
}

impl AdmissionStats {
    /// Mean absolute relative prediction error, percent.
    #[must_use]
    pub fn mean_abs_rel_err_pct(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        (self.abs_rel_err_sum_e4 as f64 / self.predictions as f64) / 100.0
    }

    /// Score one executed iteration against its admission-time prediction.
    pub fn score(&mut self, predicted: usize, actual: usize) {
        if actual == 0 {
            return;
        }
        self.predictions += 1;
        let err = predicted.abs_diff(actual) as f64 / actual as f64;
        if err <= 0.10 {
            self.within_10pct += 1;
        }
        self.abs_rel_err_sum_e4 += (err * 10_000.0) as u64;
    }
}

/// The admission controller: stateless decision function plus the fleet's
/// accuracy tally.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Fraction of device memory admission may plan into (the rest is
    /// headroom for fragmentation and prediction error).
    pub headroom: f64,
    /// Outcome tally.
    pub stats: AdmissionStats,
}

impl Default for AdmissionController {
    fn default() -> Self {
        AdmissionController {
            headroom: 0.95,
            stats: AdmissionStats::default(),
        }
    }
}

impl AdmissionController {
    /// Decide whether an iteration predicted to peak at `predicted_peak`
    /// bytes, over `profile`, fits `device`.
    ///
    /// The demotion path asks the residency engine's what-if machinery
    /// (via [`min_feasible_budget`], the all-checkpoint floor) whether
    /// checkpointing harder can make the job fit — the same O(log L)
    /// incremental queries the planners use, aimed at a fleet decision.
    pub fn decide(
        &mut self,
        predicted_peak: usize,
        profile: &ModelProfile,
        device: &DeviceProfile,
    ) -> AdmissionDecision {
        self.decide_certified(predicted_peak, profile, device, None)
    }

    /// [`decide`], consulting a static safety certificate first: when the
    /// verifier's sound peak bound fits the usable capacity, the admit is
    /// *statically verified* — it holds for every input size in the
    /// certificate's bucket, not just the predicted one — and is scored
    /// separately in `stats.verified_admits`. Without a certificate (or
    /// with a bound that does not fit) the decision falls back to the
    /// predicted-peak path unchanged.
    ///
    /// [`decide`]: AdmissionController::decide
    pub fn decide_certified(
        &mut self,
        predicted_peak: usize,
        profile: &ModelProfile,
        device: &DeviceProfile,
        certificate: Option<&SafetyCertificate>,
    ) -> AdmissionDecision {
        let capacity = device.total_mem_bytes;
        let usable = (capacity as f64 * self.headroom) as usize;
        if let Some(cert) = certificate {
            if cert.fits(usable) {
                self.stats.admitted += 1;
                self.stats.verified_admits += 1;
                return AdmissionDecision::Admit;
            }
        }
        if predicted_peak <= usable {
            self.stats.admitted += 1;
            return AdmissionDecision::Admit;
        }
        let floor = min_feasible_budget(profile);
        if floor <= usable {
            self.stats.demoted += 1;
            return AdmissionDecision::Demote { floor };
        }
        self.stats.rejected += 1;
        AdmissionDecision::Reject {
            needed: floor,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn decisions_cover_the_three_regimes() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, 256)).unwrap();
        let dev = DeviceProfile::v100();
        let mut ctl = AdmissionController::default();

        // Small prediction → admit.
        assert_eq!(ctl.decide(1 << 30, &p, &dev), AdmissionDecision::Admit);
        // Over-capacity prediction but checkpointing can save it → demote.
        let over = dev.total_mem_bytes + (1 << 30);
        match ctl.decide(over, &p, &dev) {
            AdmissionDecision::Demote { floor } => {
                assert!(floor <= dev.total_mem_bytes);
            }
            other => panic!("expected Demote, got {other:?}"),
        }
        // A device smaller than the all-checkpoint floor → reject.
        let mut tiny = DeviceProfile::v100();
        tiny.total_mem_bytes = 1 << 20;
        match ctl.decide(over, &p, &tiny) {
            AdmissionDecision::Reject { needed, capacity } => {
                assert!(needed > capacity);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        assert_eq!(ctl.stats.admitted, 1);
        assert_eq!(ctl.stats.demoted, 1);
        assert_eq!(ctl.stats.rejected, 1);
    }

    #[test]
    fn graph_passes_flip_demote_to_admit() {
        // A device sized between the raw graph's predicted peak and the
        // optimized graph's: without the pass pipeline the job demotes,
        // with it the identical job admits outright.
        let opt = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let input = ModelInput::tokens(32, 256);
        let raw_peak = opt.raw_profile(&input).unwrap().peak_no_checkpoint();
        let opt_peak = opt.profile(&input).unwrap().peak_no_checkpoint();
        assert!(opt_peak < raw_peak, "passes saved nothing on BERT");

        let p = opt.profile(&input).unwrap();
        let mut dev = DeviceProfile::v100();
        let mid = (raw_peak + opt_peak) / 2;
        dev.total_mem_bytes = (mid as f64 / 0.95).ceil() as usize;
        let mut ctl = AdmissionController::default();

        match ctl.decide(raw_peak, &p, &dev) {
            AdmissionDecision::Demote { .. } => {}
            other => panic!("raw peak should demote, got {other:?}"),
        }
        assert_eq!(ctl.decide(opt_peak, &p, &dev), AdmissionDecision::Admit);
    }

    #[test]
    fn certified_admits_are_scored_separately() {
        use mimose_verify::{certify, SizeBucket};
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, 256)).unwrap();
        let dev = DeviceProfile::v100();
        let usable = (dev.total_mem_bytes as f64 * 0.95) as usize;
        let mut ctl = AdmissionController::default();

        // A sound none-plan certificate under the usable capacity turns an
        // over-predicted job into a verified admit: the bound, not the
        // prediction, is what counts.
        let none = mimose_planner::CheckpointPlan::none(p.blocks.len());
        let bucket = SizeBucket::new(1, p.input_size);
        let cert = certify(std::slice::from_ref(&p), &none, bucket, usable).unwrap();
        let over = dev.total_mem_bytes + (1 << 30);
        assert_eq!(
            ctl.decide_certified(over, &p, &dev, Some(&cert)),
            AdmissionDecision::Admit
        );
        assert_eq!(ctl.stats.admitted, 1);
        assert_eq!(ctl.stats.verified_admits, 1);

        // A certificate whose bound exceeds capacity falls back to the
        // predicted-peak path: small prediction still admits, unverified.
        let mut big = cert;
        big.peak_upper_bound = usable + 1;
        assert_eq!(
            ctl.decide_certified(1 << 30, &p, &dev, Some(&big)),
            AdmissionDecision::Admit
        );
        assert_eq!(ctl.stats.admitted, 2);
        assert_eq!(ctl.stats.verified_admits, 1);

        // No certificate at all: plain decide is unchanged.
        assert_eq!(ctl.decide(1 << 30, &p, &dev), AdmissionDecision::Admit);
        assert_eq!(ctl.stats.verified_admits, 1);
    }

    #[test]
    fn reasons_explain_demote_and_reject_with_numbers() {
        assert_eq!(AdmissionDecision::Admit.reason(10, 20), None);
        let demote = AdmissionDecision::Demote { floor: 512 }
            .reason(2048, 1024)
            .unwrap();
        assert!(demote.contains("2048 B"), "{demote}");
        assert!(demote.contains("1024 B"), "{demote}");
        assert!(demote.contains("512 B"), "{demote}");
        let reject = AdmissionDecision::Reject {
            needed: 4096,
            capacity: 1024,
        }
        .reason(9999, 1024)
        .unwrap();
        assert!(reject.contains("4096 B"), "{reject}");
        assert!(reject.contains("1024 B"), "{reject}");
    }

    #[test]
    fn accuracy_scoring_tracks_relative_error() {
        let mut stats = AdmissionStats::default();
        stats.score(100, 100); // exact
        stats.score(109, 100); // within 10 %
        stats.score(150, 100); // off by 50 %
        assert_eq!(stats.predictions, 3);
        assert_eq!(stats.within_10pct, 2);
        let mean = stats.mean_abs_rel_err_pct();
        assert!((mean - (0.0 + 9.0 + 50.0) / 3.0).abs() < 0.1, "{mean}");
    }
}
