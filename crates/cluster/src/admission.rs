//! Admission control: decide whether a job's next iteration fits a device
//! *before* dispatching it, using the policy's predicted peak and the
//! residency engine's what-if queries — the fleet-level analogue of the
//! planner's per-iteration budget check.

use mimose_models::ModelProfile;
use mimose_planner::memory_model::min_feasible_budget;
use mimose_simgpu::DeviceProfile;

/// What the controller decided for one (job, device) pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The predicted peak fits under the device's headroom-discounted
    /// capacity: dispatch as-is.
    Admit,
    /// The prediction exceeds capacity but checkpointing more can bring
    /// the peak under it (per the residency model): dispatch with the
    /// recovery ladder armed so in-place demotion enforces the fit.
    Demote {
        /// The analytic peak the all-checkpoint configuration needs —
        /// the floor demotion can reach.
        floor: usize,
    },
    /// Even the all-checkpoint floor exceeds the device: the job can never
    /// run here.
    Reject {
        /// Bytes the job's minimum configuration needs.
        needed: usize,
        /// Bytes the device offers.
        capacity: usize,
    },
}

/// Running tally of admission outcomes and prediction quality — the
/// "admission accuracy" block of the cluster report.
#[derive(Debug, Clone, Default)]
pub struct AdmissionStats {
    /// Iterations dispatched on a plain Admit.
    pub admitted: usize,
    /// Iterations dispatched with demotion armed.
    pub demoted: usize,
    /// (job, device) pairings rejected outright.
    pub rejected: usize,
    /// Job-rounds spent waiting because no device was free or admissible.
    pub deferred_rounds: usize,
    /// Predictions scored against an executed peak.
    pub predictions: usize,
    /// Predictions within ±10 % of the executed peak.
    pub within_10pct: usize,
    /// Sum of |predicted − actual| / actual over scored predictions,
    /// in 1e-4 units (kept integral so reports serialize exactly).
    pub abs_rel_err_sum_e4: u64,
}

impl AdmissionStats {
    /// Mean absolute relative prediction error, percent.
    pub fn mean_abs_rel_err_pct(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        (self.abs_rel_err_sum_e4 as f64 / self.predictions as f64) / 100.0
    }

    /// Score one executed iteration against its admission-time prediction.
    pub fn score(&mut self, predicted: usize, actual: usize) {
        if actual == 0 {
            return;
        }
        self.predictions += 1;
        let err = predicted.abs_diff(actual) as f64 / actual as f64;
        if err <= 0.10 {
            self.within_10pct += 1;
        }
        self.abs_rel_err_sum_e4 += (err * 10_000.0) as u64;
    }
}

/// The admission controller: stateless decision function plus the fleet's
/// accuracy tally.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Fraction of device memory admission may plan into (the rest is
    /// headroom for fragmentation and prediction error).
    pub headroom: f64,
    /// Outcome tally.
    pub stats: AdmissionStats,
}

impl Default for AdmissionController {
    fn default() -> Self {
        AdmissionController {
            headroom: 0.95,
            stats: AdmissionStats::default(),
        }
    }
}

impl AdmissionController {
    /// Decide whether an iteration predicted to peak at `predicted_peak`
    /// bytes, over `profile`, fits `device`.
    ///
    /// The demotion path asks the residency engine's what-if machinery
    /// (via [`min_feasible_budget`], the all-checkpoint floor) whether
    /// checkpointing harder can make the job fit — the same O(log L)
    /// incremental queries the planners use, aimed at a fleet decision.
    pub fn decide(
        &mut self,
        predicted_peak: usize,
        profile: &ModelProfile,
        device: &DeviceProfile,
    ) -> AdmissionDecision {
        let capacity = device.total_mem_bytes;
        let usable = (capacity as f64 * self.headroom) as usize;
        if predicted_peak <= usable {
            self.stats.admitted += 1;
            return AdmissionDecision::Admit;
        }
        let floor = min_feasible_budget(profile);
        if floor <= usable {
            self.stats.demoted += 1;
            return AdmissionDecision::Demote { floor };
        }
        self.stats.rejected += 1;
        AdmissionDecision::Reject {
            needed: floor,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn decisions_cover_the_three_regimes() {
        let m = bert_base(BertHead::Classification { labels: 2 });
        let p = m.profile(&ModelInput::tokens(32, 256)).unwrap();
        let dev = DeviceProfile::v100();
        let mut ctl = AdmissionController::default();

        // Small prediction → admit.
        assert_eq!(ctl.decide(1 << 30, &p, &dev), AdmissionDecision::Admit);
        // Over-capacity prediction but checkpointing can save it → demote.
        let over = dev.total_mem_bytes + (1 << 30);
        match ctl.decide(over, &p, &dev) {
            AdmissionDecision::Demote { floor } => {
                assert!(floor <= dev.total_mem_bytes);
            }
            other => panic!("expected Demote, got {other:?}"),
        }
        // A device smaller than the all-checkpoint floor → reject.
        let mut tiny = DeviceProfile::v100();
        tiny.total_mem_bytes = 1 << 20;
        match ctl.decide(over, &p, &tiny) {
            AdmissionDecision::Reject { needed, capacity } => {
                assert!(needed > capacity);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        assert_eq!(ctl.stats.admitted, 1);
        assert_eq!(ctl.stats.demoted, 1);
        assert_eq!(ctl.stats.rejected, 1);
    }

    #[test]
    fn accuracy_scoring_tracks_relative_error() {
        let mut stats = AdmissionStats::default();
        stats.score(100, 100); // exact
        stats.score(109, 100); // within 10 %
        stats.score(150, 100); // off by 50 %
        assert_eq!(stats.predictions, 3);
        assert_eq!(stats.within_10pct, 2);
        let mean = stats.mean_abs_rel_err_pct();
        assert!((mean - (0.0 + 9.0 + 50.0) / 3.0).abs() < 0.1, "{mean}");
    }
}
