//! The round-based fleet scheduler.
//!
//! Execution proceeds in BSP rounds over virtual time: each round, every
//! busy device runs exactly one iteration of its job (in parallel real
//! threads when `threads != 1`), a barrier joins them, results merge in
//! ascending device-index order, and idle devices pick up queued jobs
//! under the configured [`SchedulePolicy`]. Because sessions touch no
//! shared state and the merge order is fixed, the resulting
//! [`ClusterReport`] is byte-identical run-to-run and across thread
//! counts — the fleet-level extension of the executor's determinism
//! contract.

use crate::admission::AdmissionController;
use crate::job::JobSpec;
use crate::report::{ClusterReport, DeviceReport, JobOutcome, JobReport};
use crate::AdmissionDecision;
use mimose_chaos::FleetFaultPlan;
use mimose_exec::{IterationRecord, RecoveryConfig, Session};
use mimose_models::ModelProfile;
use mimose_planner::memory_model::min_feasible_budget;
use mimose_planner::{CheckpointPlan, MemoryPolicy, PlanTierStats};
use mimose_runtime::{IterationReport, RunSummary};
use mimose_simgpu::DeviceProfile;
use mimose_verify::{certify, SafetyCertificate, SizeBucket};

/// How idle devices choose among queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Oldest admissible job first.
    Fifo,
    /// Admissible job with the smallest predicted iteration time first
    /// (drains short jobs early, shrinking mean queue wait).
    ShortestPredicted,
    /// Admissible job whose predicted peak fills the device best
    /// (packs big jobs onto devices while they are free).
    BestFitMemory,
}

impl SchedulePolicy {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::ShortestPredicted => "shortest-predicted",
            SchedulePolicy::BestFitMemory => "best-fit-memory",
        }
    }

    /// Parse a [`Self::name`] string (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulePolicy::Fifo),
            "shortest-predicted" | "sjf" => Some(SchedulePolicy::ShortestPredicted),
            "best-fit-memory" | "best-fit" => Some(SchedulePolicy::BestFitMemory),
            _ => None,
        }
    }
}

/// A whole cluster run, as data: jobs, devices, and the knobs.
pub struct ClusterSpec {
    /// Jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// The device pool.
    pub devices: Vec<DeviceProfile>,
    /// Dispatch policy.
    pub schedule: SchedulePolicy,
    /// `1` runs rounds serially on the calling thread; any other value
    /// spawns one scoped thread per busy device. The report is
    /// byte-identical either way.
    pub threads: usize,
    /// Admission headroom (fraction of device memory admission may plan
    /// into).
    pub headroom: f64,
    /// Per-device fault derivation (noop by default).
    pub faults: FleetFaultPlan,
    /// Record every iteration's event stream for auditing.
    pub record: bool,
}

impl ClusterSpec {
    /// A spec with default knobs: FIFO dispatch, parallel rounds, 0.95
    /// headroom, no faults, no recording.
    #[must_use]
    pub fn new(jobs: Vec<JobSpec>, devices: Vec<DeviceProfile>) -> Self {
        ClusterSpec {
            jobs,
            devices,
            schedule: SchedulePolicy::Fifo,
            threads: 0,
            headroom: 0.95,
            faults: FleetFaultPlan::none(0),
            record: false,
        }
    }

    /// Set the dispatch policy.
    #[must_use]
    pub fn schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the threading mode (see the field docs).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the fleet fault plan.
    #[must_use]
    pub fn faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable event recording.
    #[must_use]
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }
}

/// Everything the scheduler kept about one job, for auditing and
/// equivalence checks (the [`ClusterReport`] holds only the rollup).
#[derive(Debug, Default)]
pub struct JobDetail {
    /// Job name.
    pub name: String,
    /// Device the job ran on.
    pub device: Option<usize>,
    /// Round at which the job was dispatched.
    pub dispatch_round: Option<usize>,
    /// Global dispatch sequence number (0 = dispatched first).
    pub dispatch_seq: Option<usize>,
    /// Per-iteration reports, in order.
    pub reports: Vec<IterationReport>,
    /// Recorded event streams (empty unless the spec set `record`).
    pub records: Vec<IterationRecord>,
    /// The session's own fold of the run.
    pub summary: RunSummary,
    /// Planning-tier ladder counters snapshotted at job completion
    /// (`None` for static planners, which have no tiered planner).
    pub plan_tiers: Option<PlanTierStats>,
}

/// A finished cluster run: the rollup plus per-job evidence.
pub struct ClusterOutcome {
    /// The fleet rollup.
    pub report: ClusterReport,
    /// Per-job evidence, in submission order.
    pub details: Vec<JobDetail>,
}

/// A device's round result: the pre-step peak prediction (when the policy
/// offers one) and the iteration outcome.
type StepResult = (
    Option<usize>,
    Result<IterationReport, mimose_exec::ExecError>,
);

/// What the scheduler precomputes about a job at submission.
struct Submitted {
    /// Worst-case profile the static planners solved against.
    worst: ModelProfile,
    /// All-checkpoint floor over the worst case — the admit/demote/reject
    /// pivot.
    floor: usize,
    /// The policy's predicted peak for the job's first iteration.
    predicted_peak: usize,
    /// Static safety certificate over the job's worst case (sound no-plan
    /// peak bound), when it fits at least one device in the pool. Admits
    /// backed by it are scored as `verified_admits`.
    certificate: Option<SafetyCertificate>,
    /// The built policy, taken at dispatch.
    policy: Option<Box<dyn MemoryPolicy>>,
}

/// One job executing on a device.
struct Running<'a> {
    job: usize,
    session: Session<'a>,
    remaining: usize,
    reports: Vec<IterationReport>,
}

/// Per-device accumulator.
#[derive(Default)]
struct DeviceState<'a> {
    busy_ns: u64,
    jobs_run: usize,
    iters: usize,
    running: Option<Running<'a>>,
}

fn usable_bytes(dev: &DeviceProfile, headroom: f64) -> usize {
    (dev.total_mem_bytes as f64 * headroom) as usize
}

/// Run the whole spec to completion. Per-job failures (profile errors,
/// data exhaustion) are recorded in the report, not returned — a fleet
/// run always yields a report.
#[must_use]
///
/// # Panics
///
/// Panics when `spec` has no devices.
pub fn run_cluster(spec: &ClusterSpec) -> ClusterOutcome {
    let n_jobs = spec.jobs.len();
    let n_devs = spec.devices.len();
    assert!(n_devs > 0, "cluster needs at least one device");

    let mut ctl = AdmissionController {
        headroom: spec.headroom,
        ..AdmissionController::default()
    };
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n_jobs];
    let mut details: Vec<JobDetail> = spec
        .jobs
        .iter()
        .map(|j| JobDetail {
            name: j.name.clone(),
            ..JobDetail::default()
        })
        .collect();
    let mut queue_waits: Vec<Option<u64>> = vec![None; n_jobs];
    let mut demoted: Vec<bool> = vec![false; n_jobs];

    // Submission: profile each job, build its policy (static planners
    // solve once against the worst case, costed on device 0), and settle
    // jobs no device can ever hold.
    let mut submitted: Vec<Option<Submitted>> = Vec::with_capacity(n_jobs);
    let max_usable = spec
        .devices
        .iter()
        .map(|d| usable_bytes(d, spec.headroom))
        .max()
        .unwrap_or(0);
    for (j, job) in spec.jobs.iter().enumerate() {
        let worst = match job.worst_profile() {
            Ok(p) => p,
            Err(e) => {
                outcomes[j] = Some(JobOutcome::Failed(e.to_string()));
                submitted.push(None);
                continue;
            }
        };
        let floor = min_feasible_budget(&worst);
        if floor > max_usable {
            ctl.stats.rejected += 1;
            outcomes[j] = Some(JobOutcome::Rejected);
            submitted.push(None);
            continue;
        }
        let policy = job.policy.build(&worst, &spec.devices[0]);
        // Predict the first iteration's peak: that is the iteration the
        // dispatch decision gates.
        let first = spec.jobs[j].dataset.stream(job.seed).next_batch();
        let predicted_peak = match spec.jobs[j].model.profile(&first) {
            Ok(p) => policy
                .predicted_peak_bytes(&p)
                .unwrap_or_else(|| p.peak_no_checkpoint()),
            Err(e) => {
                outcomes[j] = Some(JobOutcome::Failed(e.to_string()));
                submitted.push(None);
                continue;
            }
        };
        // Statically verify the job where possible: the no-checkpoint peak
        // over the worst profile soundly bounds every plan at every input
        // size up to it, so a certificate that fits a device makes the
        // admit unconditional for this job.
        let certificate = certify(
            std::slice::from_ref(&worst),
            &CheckpointPlan::none(worst.blocks.len()),
            SizeBucket::new(1, worst.input_size),
            max_usable,
        )
        .ok();
        submitted.push(Some(Submitted {
            worst,
            floor,
            predicted_peak,
            certificate,
            policy: Some(policy),
        }));
    }

    let mut pending: Vec<usize> = (0..n_jobs).filter(|&j| outcomes[j].is_none()).collect();
    let mut devices: Vec<DeviceState> = (0..n_devs).map(|_| DeviceState::default()).collect();
    let mut rounds = 0usize;
    let mut dispatch_seq = 0usize;

    loop {
        // Dispatch phase: idle devices pick from the queue in device-index
        // order, so the choice sequence is deterministic.
        for d in 0..n_devs {
            if devices[d].running.is_some() {
                continue;
            }
            let usable = usable_bytes(&spec.devices[d], spec.headroom);
            let admissible = |j: &usize| submitted[*j].as_ref().is_some_and(|s| s.floor <= usable);
            let pick = match spec.schedule {
                SchedulePolicy::Fifo => pending.iter().position(admissible),
                SchedulePolicy::ShortestPredicted => pending
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| admissible(j))
                    .min_by_key(|(_, j)| {
                        let s = submitted[**j].as_ref().expect("admissible");
                        spec.jobs[**j].predicted_iter_ns(&s.worst, &spec.devices[d])
                    })
                    .map(|(i, _)| i),
                SchedulePolicy::BestFitMemory => pending
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| admissible(j))
                    .max_by_key(|(_, j)| {
                        let s = submitted[**j].as_ref().expect("admissible");
                        // Jobs that only fit demoted fill the device to
                        // their floor, not their prediction.
                        if s.predicted_peak <= usable {
                            s.predicted_peak
                        } else {
                            s.floor
                        }
                    })
                    .map(|(i, _)| i),
            };
            let Some(pos) = pick else { continue };
            let j = pending.remove(pos);
            let sub = submitted[j].as_mut().expect("picked job was submitted");
            let decision = ctl.decide_certified(
                sub.predicted_peak,
                &sub.worst,
                &spec.devices[d],
                sub.certificate.as_ref(),
            );
            let recovery: Option<RecoveryConfig> = match decision {
                AdmissionDecision::Admit => spec.jobs[j].recovery.clone(),
                AdmissionDecision::Demote { .. } => {
                    demoted[j] = true;
                    Some(spec.jobs[j].recovery.clone().unwrap_or_default())
                }
                AdmissionDecision::Reject { .. } => {
                    // Admissibility was pre-filtered on the floor, so the
                    // controller cannot reject here; keep the arm total.
                    outcomes[j] = Some(JobOutcome::Rejected);
                    continue;
                }
            };
            let policy = sub.policy.take().expect("policy consumed once");
            let mut builder = Session::builder(&spec.jobs[j].model, &spec.jobs[j].dataset)
                .policy_boxed(policy)
                .device(spec.devices[d].clone())
                .seed(spec.jobs[j].seed)
                .record(spec.record);
            if let Some(cfg) = recovery {
                builder = builder.recovery(cfg);
            }
            if let Some(inj) = spec.faults.injector_for(d) {
                builder = builder.chaos(inj);
            }
            match builder.build() {
                Ok(session) => {
                    // Queue wait: the cluster's virtual now — the furthest
                    // any device has run — at the dispatch instant.
                    let now = devices.iter().map(|s| s.busy_ns).max().unwrap_or(0);
                    queue_waits[j] = Some(now);
                    details[j].device = Some(d);
                    details[j].dispatch_round = Some(rounds);
                    details[j].dispatch_seq = Some(dispatch_seq);
                    dispatch_seq += 1;
                    devices[d].running = Some(Running {
                        job: j,
                        session,
                        remaining: spec.jobs[j].iters,
                        reports: Vec::with_capacity(spec.jobs[j].iters),
                    });
                }
                Err(e) => outcomes[j] = Some(JobOutcome::Failed(e.to_string())),
            }
        }

        let busy = devices.iter().filter(|s| s.running.is_some()).count();
        if busy == 0 {
            debug_assert!(
                pending.iter().all(|&j| outcomes[j].is_some()),
                "every queued job must be dispatchable somewhere"
            );
            break;
        }
        ctl.stats.deferred_rounds += pending.len();

        // Run phase: one iteration per busy device. `steps[d]` is the
        // device's (prediction, outcome) pair; order never depends on
        // thread scheduling because results land in per-device slots.
        let mut steps: Vec<Option<StepResult>> = (0..n_devs).map(|_| None).collect();
        let step_one = |run: &mut Running| {
            let predicted = run.session.predicted_peak_bytes().ok();
            (predicted, run.session.step())
        };
        if spec.threads == 1 || busy == 1 {
            for (d, state) in devices.iter_mut().enumerate() {
                if let Some(run) = state.running.as_mut() {
                    steps[d] = Some(step_one(run));
                }
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(busy);
                for (d, state) in devices.iter_mut().enumerate() {
                    if let Some(run) = state.running.as_mut() {
                        handles.push(scope.spawn(move || (d, step_one(run))));
                    }
                }
                for h in handles {
                    let (d, step) = h.join().expect("device thread panicked");
                    steps[d] = Some(step);
                }
            });
        }

        // Merge phase: ascending device index, so every counter update
        // happens in one canonical order.
        for d in 0..n_devs {
            let Some((predicted, outcome)) = steps[d].take() else {
                continue;
            };
            let finished = {
                let state = &mut devices[d];
                let run = state.running.as_mut().expect("stepped device was busy");
                match outcome {
                    Ok(report) => {
                        state.busy_ns += report.time.total_ns();
                        state.iters += 1;
                        if let Some(p) = predicted {
                            ctl.stats.score(p, report.peak_bytes);
                        }
                        run.reports.push(report);
                        run.remaining -= 1;
                        (run.remaining == 0).then_some(JobOutcome::Completed)
                    }
                    Err(e) => Some(JobOutcome::Failed(e.to_string())),
                }
            };
            if let Some(outcome) = finished {
                let mut run = devices[d].running.take().expect("finishing job was busy");
                devices[d].jobs_run += 1;
                outcomes[run.job] = Some(outcome);
                details[run.job].records = run.session.take_records();
                details[run.job].summary = run.session.summary().clone();
                details[run.job].plan_tiers = run.session.policy().plan_tier_stats();
                details[run.job].reports = std::mem::take(&mut run.reports);
            }
        }
        rounds += 1;
    }

    // Roll up.
    let makespan_ns = devices.iter().map(|s| s.busy_ns).max().unwrap_or(0);
    let busy_ns: u64 = devices.iter().map(|s| s.busy_ns).sum();
    let utilization_pct = if makespan_ns > 0 {
        busy_ns as f64 / (makespan_ns as f64 * n_devs as f64) * 100.0
    } else {
        0.0
    };
    let waits: Vec<u64> = queue_waits.iter().filter_map(|w| *w).collect();
    let mean_queue_wait_ns = if waits.is_empty() {
        0
    } else {
        waits.iter().sum::<u64>() / waits.len() as u64
    };
    let max_queue_wait_ns = waits.iter().copied().max().unwrap_or(0);

    let jobs: Vec<JobReport> = spec
        .jobs
        .iter()
        .enumerate()
        .map(|(j, job)| {
            let s = &details[j].summary;
            JobReport {
                name: job.name.clone(),
                policy: job.policy.name().to_string(),
                device: details[j].device,
                outcome: outcomes[j].clone().unwrap_or(JobOutcome::Rejected),
                demoted: demoted[j],
                iters: s.iters,
                queue_wait_ns: queue_waits[j].unwrap_or(0),
                total_ns: s.total_ns,
                max_peak_bytes: s.max_peak_bytes,
                oom_iters: s.oom_iters,
                recovered_iters: s.recovered_iters,
                recovery_events: s.recovery_events,
                shuttle_iters: s.shuttle_iters,
                plan_tiers: details[j].plan_tiers,
            }
        })
        .collect();
    let report = ClusterReport {
        schedule: spec.schedule.name().to_string(),
        rounds,
        makespan_ns,
        busy_ns,
        utilization_pct,
        mean_queue_wait_ns,
        max_queue_wait_ns,
        oom_iters: jobs.iter().map(|j| j.oom_iters).sum(),
        recovered_iters: jobs.iter().map(|j| j.recovered_iters).sum(),
        recovery_events: jobs.iter().map(|j| j.recovery_events).sum(),
        admission: ctl.stats,
        devices: devices
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceReport {
                index: i,
                capacity_bytes: spec.devices[i].total_mem_bytes,
                busy_ns: s.busy_ns,
                jobs_run: s.jobs_run,
                iters: s.iters,
            })
            .collect(),
        jobs,
    };
    ClusterOutcome { report, details }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPolicy;
    use crate::workload::{mixed_workload, v100_pool};
    use mimose_chaos::{FaultSpec, FleetFaultPlan};
    use mimose_data::presets;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_planner::PolicyKind;

    fn small_spec(devices: usize) -> ClusterSpec {
        ClusterSpec::new(mixed_workload(2), v100_pool(devices))
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let a = run_cluster(&small_spec(2)).report.to_json();
        let b = run_cluster(&small_spec(2)).report.to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let serial = run_cluster(&small_spec(3).threads(1)).report.to_json();
        let parallel = run_cluster(&small_spec(3).threads(0)).report.to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_schedule_policy_completes_the_workload() {
        for schedule in [
            SchedulePolicy::Fifo,
            SchedulePolicy::ShortestPredicted,
            SchedulePolicy::BestFitMemory,
        ] {
            let outcome = run_cluster(&small_spec(2).schedule(schedule));
            assert_eq!(outcome.report.schedule, schedule.name());
            for job in &outcome.report.jobs {
                assert_eq!(
                    job.outcome,
                    JobOutcome::Completed,
                    "{} under {}",
                    job.name,
                    schedule.name()
                );
            }
            assert!(outcome.report.makespan_ns > 0);
            assert!(outcome.report.utilization_pct > 0.0);
        }
    }

    #[test]
    fn verified_admits_reach_the_fleet_report() {
        let outcome = run_cluster(&small_spec(2));
        let adm = &outcome.report.admission;
        assert!(adm.verified_admits <= adm.admitted);
        let json = outcome.report.to_json();
        assert!(json.contains(&format!("\"verified_admits\":{}", adm.verified_admits)));
    }

    #[test]
    fn impossible_job_is_rejected_not_hung() {
        let model = bert_base(BertHead::Classification { labels: 2 });
        let ds = presets::glue_qqp();
        let job = crate::JobSpec::new(
            "too-big",
            model,
            ds,
            JobPolicy::Planner(PolicyKind::Sublinear, 1 << 20),
            2,
            1,
        );
        let mut tiny = mimose_simgpu::DeviceProfile::v100();
        tiny.total_mem_bytes = 1 << 20; // 1 MiB: below any BERT floor
        let outcome = run_cluster(&ClusterSpec::new(vec![job], vec![tiny]));
        assert_eq!(outcome.report.jobs[0].outcome, JobOutcome::Rejected);
        assert_eq!(outcome.report.jobs[0].device, None);
        assert_eq!(outcome.report.admission.rejected, 1);
        assert_eq!(outcome.report.makespan_ns, 0);
    }

    #[test]
    fn more_devices_never_lengthen_the_makespan() {
        let one = run_cluster(&small_spec(1)).report.makespan_ns;
        let two = run_cluster(&small_spec(2)).report.makespan_ns;
        assert!(two <= one, "two devices {two} > one device {one}");
    }

    #[test]
    fn fleet_faults_replay_byte_identically() {
        let faults = FleetFaultPlan::new(FaultSpec {
            alloc_failure_rate: 0.3,
            ..FaultSpec::none(99)
        });
        let mk = || small_spec(2).faults(faults.clone()).record(true);
        let a = run_cluster(&mk());
        let b = run_cluster(&mk());
        assert_eq!(a.report.to_json(), b.report.to_json());
        // Recording captured event streams for every executed iteration.
        for (da, db) in a.details.iter().zip(&b.details) {
            assert_eq!(da.records.len(), da.reports.len());
            assert_eq!(format!("{:?}", da.reports), format!("{:?}", db.reports));
        }
    }
}
