//! The round-based (BSP) fleet driver and the mode-shared [`ClusterSpec`].
//!
//! Execution proceeds in BSP rounds over virtual time: each round, every
//! busy device runs exactly one iteration of its job (in parallel real
//! threads when `threads != 1`), a barrier joins them, results merge in
//! ascending device-index order, and idle devices pick up queued jobs
//! under the configured [`SchedulePolicy`]. Because sessions touch no
//! shared state and the merge order is fixed, the resulting
//! [`ClusterReport`] is byte-identical run-to-run and across thread
//! counts — the fleet-level extension of the executor's determinism
//! contract. The event-driven driver lives in [`crate::des`]; both share
//! the submission, picking and rollup machinery in [`crate::protocol`].
//!
//! # Failure protocol
//!
//! The fault plan can take devices away mid-run
//! ([`DeviceFault`](mimose_chaos::DeviceFault)). At the top of every
//! round the scheduler observes each device's condition; when a device
//! with an in-flight job goes down or is lost, the job is **checkpointed**
//! at its last completed iteration boundary
//! ([`Session::checkpoint`](mimose_exec::Session::checkpoint) captures the
//! warmed policy — plan cache, certificates, adaptive-estimator state —
//! plus the data-stream cursor and accumulated summary), **requeued**
//! under exponential virtual-round backoff, and **migrated** to a
//! surviving device through the same admission controller that gated its
//! first dispatch (so migration can demote). When the degraded pool can
//! never place a job (its all-checkpoint floor exceeds every surviving
//! device) or its retry budget is exhausted, the job is **shed** or
//! **failed** explicitly — lowest priority first — never silently
//! dropped or starved. Every step of the protocol is a typed, cost-
//! attributed [`FleetEvent`](crate::FleetEvent) on the report, and all of
//! it happens in the serial dispatch/merge phases, so the determinism
//! contract survives device loss.

use crate::admission::AdmissionController;
use crate::error::ClusterError;
use crate::events::{
    FleetEvent, FleetEventKind, BACKOFF_BASE_ROUNDS, CHECKPOINT_COST_NS, RESTORE_COST_NS,
};
use crate::job::JobSpec;
use crate::protocol::{self, DeviceAccum, RollupInputs};
use crate::report::{ClusterReport, FleetStats, JobOutcome, JobPlacement};
use crate::spec::{validate, Mode};
use crate::AdmissionDecision;
use mimose_chaos::{DeviceCondition, FleetFaultPlan};
use mimose_data::ArrivalProcess;
use mimose_exec::{IterationRecord, RecoveryConfig, Session, SessionCheckpoint};
use mimose_planner::PlanTierStats;
use mimose_runtime::{IterationReport, RunSummary};
use mimose_simgpu::DeviceProfile;

/// How idle devices choose among queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Oldest admissible job first.
    Fifo,
    /// Admissible job with the smallest predicted iteration time first
    /// (drains short jobs early, shrinking mean queue wait).
    ShortestPredicted,
    /// Admissible job whose predicted peak fills the device best
    /// (packs big jobs onto devices while they are free).
    BestFitMemory,
}

impl SchedulePolicy {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::ShortestPredicted => "shortest-predicted",
            SchedulePolicy::BestFitMemory => "best-fit-memory",
        }
    }

    /// Parse a [`Self::name`] string (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulePolicy::Fifo),
            "shortest-predicted" | "sjf" => Some(SchedulePolicy::ShortestPredicted),
            "best-fit-memory" | "best-fit" => Some(SchedulePolicy::BestFitMemory),
            _ => None,
        }
    }
}

/// A whole cluster run, as data: jobs, devices, and the knobs. Most code
/// should construct one through [`Cluster::builder`](crate::Cluster),
/// which validates into this spec.
pub struct ClusterSpec {
    /// Jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// The device pool.
    pub devices: Vec<DeviceProfile>,
    /// Dispatch policy.
    pub schedule: SchedulePolicy,
    /// `1` runs BSP rounds serially on the calling thread; any other
    /// value spawns one scoped thread per busy device. The report is
    /// byte-identical either way. Ignored in event-driven mode (the event
    /// loop is serial by construction).
    pub threads: usize,
    /// Admission headroom (fraction of device memory admission may plan
    /// into).
    pub headroom: f64,
    /// Per-device fault derivation (noop by default). BSP mode consumes
    /// round-indexed faults; event-driven mode consumes timed faults.
    pub faults: FleetFaultPlan,
    /// Record every iteration's event stream for auditing.
    pub record: bool,
    /// How many times a job may be displaced off a dying device before
    /// the scheduler fails it instead of requeueing again.
    pub max_retries: usize,
    /// How virtual time advances (BSP rounds or discrete events).
    pub mode: Mode,
    /// When jobs enter the fleet (event-driven mode; BSP ignores it).
    pub arrivals: ArrivalProcess,
    /// Bound on the pending queue (event-driven mode): arrivals past it
    /// are shed explicitly. `None` queues without bound.
    pub queue_limit: Option<usize>,
}

impl ClusterSpec {
    /// A spec with default knobs: FIFO dispatch, parallel rounds, 0.95
    /// headroom, no faults, no recording, 3 displacement retries, BSP
    /// mode with immediate arrivals and no queue limit.
    #[must_use]
    pub fn new(jobs: Vec<JobSpec>, devices: Vec<DeviceProfile>) -> Self {
        ClusterSpec {
            jobs,
            devices,
            schedule: SchedulePolicy::Fifo,
            threads: 0,
            headroom: 0.95,
            faults: FleetFaultPlan::none(0),
            record: false,
            max_retries: 3,
            mode: Mode::Bsp,
            arrivals: ArrivalProcess::Immediate,
            queue_limit: None,
        }
    }

    /// Set the dispatch policy.
    #[must_use]
    pub fn schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the threading mode (see the field docs).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the fleet fault plan.
    #[must_use]
    pub fn faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable event recording.
    #[must_use]
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Set the displacement retry budget.
    #[must_use]
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Set the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the arrival process (event-driven mode).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Bound the pending queue (event-driven mode).
    #[must_use]
    pub fn queue_limit(mut self, queue_limit: Option<usize>) -> Self {
        self.queue_limit = queue_limit;
        self
    }
}

/// Everything the scheduler kept about one job, for auditing and
/// equivalence checks (the [`ClusterReport`] holds only the rollup).
#[derive(Debug, Default)]
pub struct JobDetail {
    /// Job name.
    pub name: String,
    /// Device the job last ran on.
    pub device: Option<usize>,
    /// Round (BSP) or event-loop epoch (event-driven) at which the job
    /// was first dispatched.
    pub dispatch_round: Option<usize>,
    /// Global dispatch sequence number of the first dispatch
    /// (0 = dispatched first; migrations take fresh numbers, recorded on
    /// their [`FleetEvent`]).
    pub dispatch_seq: Option<usize>,
    /// Per-iteration reports, in order, across every placement.
    pub reports: Vec<IterationReport>,
    /// Recorded event streams (empty unless the spec set `record`).
    pub records: Vec<IterationRecord>,
    /// The session's own fold of the run.
    pub summary: RunSummary,
    /// Planning-tier ladder counters snapshotted at job completion
    /// (`None` for static planners, which have no tiered planner).
    pub plan_tiers: Option<PlanTierStats>,
    /// Why admission demoted or rejected the job (`None` for plain
    /// admits).
    pub admission_reason: Option<String>,
    /// The policy's predicted first-iteration peak over the *raw*
    /// (pre-pass) graph, when it could be profiled — what admission
    /// would have gated on without the optimization pipeline.
    pub graph_raw_peak_bytes: Option<usize>,
    /// The same prediction over the optimized graph — what admission
    /// actually gated on. The gap to `graph_raw_peak_bytes` is the
    /// pass pipeline's credit.
    pub graph_opt_peak_bytes: Option<usize>,
}

/// A finished cluster run: the rollup plus per-job evidence.
pub struct ClusterOutcome {
    /// The fleet rollup.
    pub report: ClusterReport,
    /// Per-job evidence, in submission order.
    pub details: Vec<JobDetail>,
}

/// A device's round result: the pre-step peak prediction (when the policy
/// offers one) and the iteration outcome.
type StepResult = (
    Option<usize>,
    Result<IterationReport, mimose_exec::ExecError>,
);

/// One job executing on a device.
struct Running<'a> {
    job: usize,
    session: Session<'a>,
    remaining: usize,
    reports: Vec<IterationReport>,
    /// Busy time executed in the current placement span.
    seg_ns: u64,
    /// Iterations executed in the current placement span.
    seg_iters: usize,
}

/// A checkpointed job waiting out its backoff window for re-admission.
struct Displaced {
    job: usize,
    checkpoint: SessionCheckpoint,
    remaining: usize,
    ready_round: usize,
    from_device: usize,
}

/// Per-device accumulator.
#[derive(Default)]
struct DeviceState<'a> {
    busy_ns: u64,
    jobs_run: usize,
    iters: usize,
    running: Option<Running<'a>>,
}

/// Legacy entry point, kept so pre-builder call sites keep compiling.
/// New code goes through [`Cluster::builder`](crate::Cluster), which
/// returns the same outcome as a `Result` instead of panicking.
#[doc(hidden)]
#[must_use]
///
/// # Panics
///
/// Panics when `spec` is malformed (e.g. has no devices) — the condition
/// [`run_bsp`] reports as a typed [`ClusterError`].
pub fn run_cluster(spec: &ClusterSpec) -> ClusterOutcome {
    run_bsp(spec).unwrap()
}

/// Run the whole spec to completion under BSP rounds. Per-job failures
/// (profile errors, data exhaustion, displacement past the retry budget)
/// and load-shed jobs are recorded in the report, not returned — a fleet
/// run that starts always yields a report, even when the fault plan kills
/// every device.
///
/// # Errors
///
/// [`ClusterError`] when the spec cannot start at all (empty device pool,
/// zero-iteration job).
#[allow(clippy::too_many_lines)]
pub fn run_bsp(spec: &ClusterSpec) -> Result<ClusterOutcome, ClusterError> {
    validate(spec)?;
    let n_jobs = spec.jobs.len();
    let n_devs = spec.devices.len();

    let mut ctl = AdmissionController {
        headroom: spec.headroom,
        ..AdmissionController::default()
    };
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n_jobs];
    let mut details: Vec<JobDetail> = spec
        .jobs
        .iter()
        .map(|j| JobDetail {
            name: j.name.clone(),
            ..JobDetail::default()
        })
        .collect();
    let mut queue_waits: Vec<Option<u64>> = vec![None; n_jobs];
    let mut demoted: Vec<bool> = vec![false; n_jobs];
    let mut placements: Vec<Vec<JobPlacement>> = vec![Vec::new(); n_jobs];
    let mut migrations = vec![0usize; n_jobs];
    let mut retries = vec![0usize; n_jobs];
    let mut overhead = vec![0u64; n_jobs];
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut fleet = FleetStats {
        max_retries: spec.max_retries,
        ..FleetStats::default()
    };

    let mut submitted = protocol::submit_jobs(spec, &mut ctl, &mut outcomes, &mut details);

    let mut pending: Vec<usize> = (0..n_jobs).filter(|&j| outcomes[j].is_none()).collect();
    let mut displaced: Vec<Displaced> = Vec::new();
    let mut devices: Vec<DeviceState> = (0..n_devs).map(|_| DeviceState::default()).collect();
    let mut last_cond: Vec<DeviceCondition> = vec![DeviceCondition::Up; n_devs];
    let mut lost: Vec<bool> = vec![false; n_devs];
    let mut rounds = 0usize;
    let mut dispatch_seq = 0usize;

    loop {
        // The fleet's virtual now — the furthest any device has run —
        // stamps every event and queue wait observed this round.
        let now = devices.iter().map(|s| s.busy_ns).max().unwrap_or(0);

        // --- Fault observation: device transitions, displacement. ---
        // Serial and in device-index order, so the event chain and every
        // checkpoint decision are deterministic.
        let conds: Vec<DeviceCondition> = (0..n_devs)
            .map(|d| spec.faults.device_condition(d, rounds))
            .collect();
        // The best any permanently-surviving device can ever offer: the
        // shed pivot. Down devices count — they come back.
        let alive_usable = (0..n_devs)
            .filter(|&d| conds[d] != DeviceCondition::Lost)
            .map(|d| protocol::usable_bytes(&spec.devices[d], spec.headroom))
            .max()
            .unwrap_or(0);
        for d in 0..n_devs {
            if conds[d] == last_cond[d] {
                continue;
            }
            match conds[d] {
                DeviceCondition::Up => {
                    events.push(FleetEvent {
                        round: rounds,
                        at_ns: now,
                        kind: FleetEventKind::DeviceUp { device: d },
                        cost_ns: 0,
                    });
                }
                DeviceCondition::Down | DeviceCondition::Lost => {
                    let until_round = if conds[d] == DeviceCondition::Lost {
                        lost[d] = true;
                        fleet.devices_lost += 1;
                        None
                    } else {
                        // Walk the plan's boundaries to the round this
                        // device returns (None if it is lost before then).
                        let mut probe = rounds;
                        let mut until = None;
                        while let Some(t) = spec.faults.next_transition_after(probe) {
                            match spec.faults.device_condition(d, t) {
                                DeviceCondition::Up => {
                                    until = Some(t);
                                    break;
                                }
                                DeviceCondition::Lost => break,
                                DeviceCondition::Down => probe = t,
                            }
                        }
                        until
                    };
                    events.push(FleetEvent {
                        round: rounds,
                        at_ns: now,
                        kind: FleetEventKind::DeviceDown {
                            device: d,
                            until_round,
                        },
                        cost_ns: 0,
                    });
                    // Displace the in-flight job, if any: checkpoint at
                    // the last completed iteration boundary and requeue
                    // under backoff — or fail it when the retry budget is
                    // spent. (Whether the degraded pool can still place it
                    // is the triage pass's call, so shedding stays in one
                    // priority-ordered place.)
                    if let Some(run) = devices[d].running.take() {
                        let j = run.job;
                        if run.seg_iters > 0 || run.seg_ns > 0 {
                            placements[j].push(JobPlacement {
                                device: d,
                                busy_ns: run.seg_ns,
                                iters: run.seg_iters,
                            });
                        }
                        details[j].reports.extend(run.reports);
                        if retries[j] + 1 > spec.max_retries {
                            let reason = format!(
                                "displaced {} times; retry budget {} exhausted",
                                retries[j] + 1,
                                spec.max_retries
                            );
                            events.push(FleetEvent {
                                round: rounds,
                                at_ns: now,
                                kind: FleetEventKind::Fail {
                                    job: j,
                                    reason: reason.clone(),
                                },
                                cost_ns: 0,
                            });
                            outcomes[j] = Some(JobOutcome::Failed(reason));
                            let mut session = run.session;
                            details[j].records.extend(session.take_records());
                            details[j].summary = session.summary().clone();
                            details[j].plan_tiers = session.policy().plan_tier_stats();
                        } else {
                            retries[j] += 1;
                            let checkpoint = run.session.checkpoint();
                            overhead[j] += CHECKPOINT_COST_NS;
                            fleet.checkpoints += 1;
                            events.push(FleetEvent {
                                round: rounds,
                                at_ns: now,
                                kind: FleetEventKind::Checkpoint {
                                    job: j,
                                    device: d,
                                    cursor: checkpoint.cursor(),
                                },
                                cost_ns: CHECKPOINT_COST_NS,
                            });
                            events.push(FleetEvent {
                                round: rounds,
                                at_ns: now,
                                kind: FleetEventKind::Requeue {
                                    job: j,
                                    retries: retries[j],
                                },
                                cost_ns: 0,
                            });
                            let ready_round = rounds
                                .saturating_add(BACKOFF_BASE_ROUNDS << (retries[j] - 1).min(32));
                            events.push(FleetEvent {
                                round: rounds,
                                at_ns: now,
                                kind: FleetEventKind::Backoff {
                                    job: j,
                                    until_round: ready_round,
                                },
                                cost_ns: 0,
                            });
                            displaced.push(Displaced {
                                job: j,
                                checkpoint,
                                remaining: run.remaining,
                                ready_round,
                                from_device: d,
                            });
                        }
                    }
                }
            }
            last_cond[d] = conds[d];
        }

        // --- Triage: shed queued work the degraded pool can never place,
        // lowest priority first (graceful degradation instead of
        // starvation). The only place jobs are shed, so the drop order is
        // one deterministic priority sort per round. ---
        let unplaceable = |j: usize| submitted[j].as_ref().is_none_or(|s| s.floor > alive_usable);
        if pending.iter().any(|&j| unplaceable(j)) || displaced.iter().any(|x| unplaceable(x.job)) {
            let mut to_shed: Vec<(usize, Option<Displaced>)> = Vec::new();
            let mut kept = Vec::with_capacity(displaced.len());
            for x in displaced.drain(..) {
                if unplaceable(x.job) {
                    to_shed.push((x.job, Some(x)));
                } else {
                    kept.push(x);
                }
            }
            displaced = kept;
            to_shed.extend(
                pending
                    .iter()
                    .copied()
                    .filter(|&j| unplaceable(j))
                    .map(|j| (j, None)),
            );
            pending.retain(|&j| !unplaceable(j));
            to_shed.sort_by_key(|(j, _)| (spec.jobs[*j].priority, *j));
            for (j, dsp) in to_shed {
                let reason = if alive_usable == 0 {
                    "no surviving device in the pool".to_string()
                } else {
                    format!(
                        "all-checkpoint floor exceeds every surviving device's usable \
                         capacity ({alive_usable} B)"
                    )
                };
                events.push(FleetEvent {
                    round: rounds,
                    at_ns: now,
                    kind: FleetEventKind::Shed {
                        job: j,
                        reason: reason.clone(),
                    },
                    cost_ns: 0,
                });
                fleet.shed_jobs += 1;
                outcomes[j] = Some(JobOutcome::Shed(reason));
                if let Some(dsp) = dsp {
                    // Preserve the checkpointed evidence of what did run.
                    let (summary, records, policy) = dsp.checkpoint.into_evidence();
                    details[j].summary = summary;
                    details[j].records.extend(records);
                    details[j].plan_tiers = policy.plan_tier_stats();
                }
            }
        }

        // --- Dispatch phase: idle, reachable devices pick work in
        // device-index order, so the choice sequence is deterministic.
        // Displaced jobs (highest priority, then requeue order) outrank
        // fresh submissions — they hold warmed checkpoints, and deferring
        // new admissions is the fleet's backpressure under degradation. ---
        for d in 0..n_devs {
            if devices[d].running.is_some() || conds[d] != DeviceCondition::Up {
                continue;
            }
            let cap_factor = spec.faults.capacity_factor(d, rounds);
            let dev_eff = protocol::effective_device(spec, d, cap_factor);
            let usable = protocol::usable_bytes(&dev_eff, spec.headroom);

            // 1. A ready displaced job that fits?
            let pick = displaced
                .iter()
                .enumerate()
                .filter(|(_, x)| {
                    x.ready_round <= rounds
                        && submitted[x.job].as_ref().is_some_and(|s| s.floor <= usable)
                })
                .min_by_key(|(pos, x)| (std::cmp::Reverse(spec.jobs[x.job].priority), *pos))
                .map(|(pos, _)| pos);
            if let Some(pos) = pick {
                let dsp = displaced.remove(pos);
                let j = dsp.job;
                let Some(sub) = submitted[j].as_ref() else {
                    // The pick filter proved submission; settle explicitly
                    // rather than panicking if that invariant ever breaks.
                    outcomes[j] = Some(JobOutcome::Failed(
                        "internal: displaced job lost its submission record".into(),
                    ));
                    continue;
                };
                let decision = ctl.decide_certified(
                    sub.predicted_peak,
                    &sub.worst,
                    &dev_eff,
                    sub.certificate.as_ref(),
                );
                if details[j].admission_reason.is_none() {
                    details[j].admission_reason =
                        decision.reason(sub.predicted_peak, usable).map(|r| {
                            match &sub.graph_evidence {
                                Some(g) => format!("{r}; {g}"),
                                None => r,
                            }
                        });
                }
                let recovery: Option<RecoveryConfig> = match decision {
                    AdmissionDecision::Admit => spec.jobs[j].recovery.clone(),
                    AdmissionDecision::Demote { .. } => {
                        demoted[j] = true;
                        Some(spec.jobs[j].recovery.clone().unwrap_or_default())
                    }
                    AdmissionDecision::Reject { .. } => {
                        // Pre-filtered on the floor, so unreachable; settle
                        // the job explicitly rather than dropping it.
                        let reason = "re-admission rejected below the floor".to_string();
                        events.push(FleetEvent {
                            round: rounds,
                            at_ns: now,
                            kind: FleetEventKind::Fail {
                                job: j,
                                reason: reason.clone(),
                            },
                            cost_ns: 0,
                        });
                        outcomes[j] = Some(JobOutcome::Failed(reason));
                        continue;
                    }
                };
                let cursor = dsp.checkpoint.cursor();
                let mut builder = Session::builder(&spec.jobs[j].model, &spec.jobs[j].dataset)
                    .device(spec.devices[d].clone())
                    .record(spec.record)
                    .resume(dsp.checkpoint);
                if let Some(cfg) = recovery {
                    builder = builder.recovery(cfg);
                }
                if let Some(inj) = spec.faults.injector_for(d) {
                    builder = builder.chaos(inj);
                }
                match builder.build() {
                    Ok(session) => {
                        details[j].device = Some(d);
                        overhead[j] += RESTORE_COST_NS;
                        migrations[j] += 1;
                        fleet.migrations += 1;
                        events.push(FleetEvent {
                            round: rounds,
                            at_ns: now,
                            kind: FleetEventKind::Migrate {
                                job: j,
                                from: dsp.from_device,
                                to: d,
                                cursor,
                                seq: dispatch_seq,
                            },
                            cost_ns: RESTORE_COST_NS,
                        });
                        dispatch_seq += 1;
                        devices[d].running = Some(Running {
                            job: j,
                            session,
                            remaining: dsp.remaining,
                            reports: Vec::with_capacity(dsp.remaining),
                            seg_ns: 0,
                            seg_iters: 0,
                        });
                    }
                    Err(e) => {
                        let reason = e.to_string();
                        events.push(FleetEvent {
                            round: rounds,
                            at_ns: now,
                            kind: FleetEventKind::Fail {
                                job: j,
                                reason: reason.clone(),
                            },
                            cost_ns: 0,
                        });
                        outcomes[j] = Some(JobOutcome::Failed(reason));
                    }
                }
                continue;
            }

            // 2. Otherwise a fresh submission under the dispatch policy.
            let Some(pos) = protocol::pick_pending(
                spec.schedule,
                &pending,
                &submitted,
                &spec.jobs,
                &spec.devices[d],
                usable,
            ) else {
                continue;
            };
            let j = pending.remove(pos);
            let Some(sub) = submitted[j].as_mut() else {
                outcomes[j] = Some(JobOutcome::Failed(
                    "internal: picked job lost its submission record".into(),
                ));
                continue;
            };
            let decision = ctl.decide_certified(
                sub.predicted_peak,
                &sub.worst,
                &dev_eff,
                sub.certificate.as_ref(),
            );
            if details[j].admission_reason.is_none() {
                details[j].admission_reason =
                    decision.reason(sub.predicted_peak, usable).map(|r| {
                        match &sub.graph_evidence {
                            Some(g) => format!("{r}; {g}"),
                            None => r,
                        }
                    });
            }
            let recovery: Option<RecoveryConfig> = match decision {
                AdmissionDecision::Admit => spec.jobs[j].recovery.clone(),
                AdmissionDecision::Demote { .. } => {
                    demoted[j] = true;
                    Some(spec.jobs[j].recovery.clone().unwrap_or_default())
                }
                AdmissionDecision::Reject { .. } => {
                    // Admissibility was pre-filtered on the floor, so the
                    // controller cannot reject here; keep the arm total.
                    outcomes[j] = Some(JobOutcome::Rejected);
                    continue;
                }
            };
            let Some(policy) = sub.policy.take() else {
                outcomes[j] = Some(JobOutcome::Failed(
                    "internal: job policy consumed before dispatch".into(),
                ));
                continue;
            };
            let mut builder = Session::builder(&spec.jobs[j].model, &spec.jobs[j].dataset)
                .policy_boxed(policy)
                .device(spec.devices[d].clone())
                .seed(spec.jobs[j].seed)
                .record(spec.record);
            if let Some(cfg) = recovery {
                builder = builder.recovery(cfg);
            }
            if let Some(inj) = spec.faults.injector_for(d) {
                builder = builder.chaos(inj);
            }
            match builder.build() {
                Ok(session) => {
                    // Queue wait: the cluster's virtual now — the furthest
                    // any device has run — at the dispatch instant.
                    queue_waits[j] = Some(now);
                    details[j].device = Some(d);
                    details[j].dispatch_round = Some(rounds);
                    details[j].dispatch_seq = Some(dispatch_seq);
                    dispatch_seq += 1;
                    devices[d].running = Some(Running {
                        job: j,
                        session,
                        remaining: spec.jobs[j].iters,
                        reports: Vec::with_capacity(spec.jobs[j].iters),
                        seg_ns: 0,
                        seg_iters: 0,
                    });
                }
                Err(e) => outcomes[j] = Some(JobOutcome::Failed(e.to_string())),
            }
        }

        let busy = devices.iter().filter(|s| s.running.is_some()).count();
        if busy == 0 {
            if displaced.is_empty() && pending.is_empty() {
                break;
            }
            // Waiting round: nothing runnable now, but work remains (a
            // down device will return, or a backoff window is open). Jump
            // the virtual round clock to the next boundary instead of
            // spinning; if no boundary lies ahead the stragglers are
            // unreachable — shed them explicitly and stop.
            let next_fault = spec.faults.next_transition_after(rounds);
            let next_ready = displaced
                .iter()
                .map(|x| x.ready_round)
                .filter(|&r| r > rounds)
                .min();
            match [next_fault, next_ready].into_iter().flatten().min() {
                Some(r) => {
                    rounds = r;
                    continue;
                }
                None => {
                    let mut stragglers: Vec<(usize, Option<Displaced>)> = pending
                        .drain(..)
                        .map(|j| (j, None))
                        .chain(displaced.drain(..).map(|x| (x.job, Some(x))))
                        .collect();
                    stragglers.sort_by_key(|(j, _)| (spec.jobs[*j].priority, *j));
                    for (j, dsp) in stragglers {
                        let reason =
                            "fleet quiesced with no placement path for this job".to_string();
                        events.push(FleetEvent {
                            round: rounds,
                            at_ns: now,
                            kind: FleetEventKind::Shed {
                                job: j,
                                reason: reason.clone(),
                            },
                            cost_ns: 0,
                        });
                        fleet.shed_jobs += 1;
                        outcomes[j] = Some(JobOutcome::Shed(reason));
                        if let Some(dsp) = dsp {
                            let (summary, records, policy) = dsp.checkpoint.into_evidence();
                            details[j].summary = summary;
                            details[j].records.extend(records);
                            details[j].plan_tiers = policy.plan_tier_stats();
                        }
                    }
                    break;
                }
            }
        }
        ctl.stats.deferred_rounds += pending.len() + displaced.len();

        // Run phase: one iteration per busy device. `steps[d]` is the
        // device's (prediction, outcome) pair; order never depends on
        // thread scheduling because results land in per-device slots.
        let mut steps: Vec<Option<StepResult>> = (0..n_devs).map(|_| None).collect();
        let step_one = |run: &mut Running| {
            let predicted = run.session.predicted_peak_bytes().ok();
            (predicted, run.session.step())
        };
        if spec.threads == 1 || busy == 1 {
            for (d, state) in devices.iter_mut().enumerate() {
                if let Some(run) = state.running.as_mut() {
                    steps[d] = Some(step_one(run));
                }
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(busy);
                for (d, state) in devices.iter_mut().enumerate() {
                    if let Some(run) = state.running.as_mut() {
                        handles.push(scope.spawn(move || (d, step_one(run))));
                    }
                }
                for h in handles {
                    match h.join() {
                        Ok((d, step)) => steps[d] = Some(step),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        }

        // Merge phase: ascending device index, so every counter update
        // happens in one canonical order.
        for d in 0..n_devs {
            let Some((predicted, outcome)) = steps[d].take() else {
                continue;
            };
            let finished = {
                let state = &mut devices[d];
                let Some(run) = state.running.as_mut() else {
                    continue;
                };
                match outcome {
                    Ok(report) => {
                        let t = report.time.total_ns();
                        state.busy_ns += t;
                        state.iters += 1;
                        run.seg_ns += t;
                        run.seg_iters += 1;
                        if let Some(p) = predicted {
                            ctl.stats.score(p, report.peak_bytes);
                        }
                        run.reports.push(report);
                        run.remaining = run.remaining.saturating_sub(1);
                        (run.remaining == 0).then(|| {
                            if migrations[run.job] > 0 {
                                JobOutcome::Migrated
                            } else {
                                JobOutcome::Completed
                            }
                        })
                    }
                    Err(e) => Some(JobOutcome::Failed(e.to_string())),
                }
            };
            if let Some(outcome) = finished {
                let Some(mut run) = devices[d].running.take() else {
                    continue;
                };
                devices[d].jobs_run += 1;
                outcomes[run.job] = Some(outcome);
                if run.seg_iters > 0 || run.seg_ns > 0 {
                    placements[run.job].push(JobPlacement {
                        device: d,
                        busy_ns: run.seg_ns,
                        iters: run.seg_iters,
                    });
                }
                details[run.job].records.extend(run.session.take_records());
                details[run.job].summary = run.session.summary().clone();
                details[run.job].plan_tiers = run.session.policy().plan_tier_stats();
                details[run.job]
                    .reports
                    .extend(std::mem::take(&mut run.reports));
            }
        }
        rounds += 1;
    }

    let makespan_ns = devices.iter().map(|s| s.busy_ns).max().unwrap_or(0);
    let device_stats = devices
        .iter()
        .map(|s| DeviceAccum {
            busy_ns: s.busy_ns,
            jobs_run: s.jobs_run,
            iters: s.iters,
        })
        .collect();
    let report = protocol::finish_report(
        spec,
        ctl,
        &details,
        RollupInputs {
            outcomes,
            queue_waits,
            demoted,
            placements,
            migrations,
            retries,
            overhead,
            arrival_ns: vec![0; n_jobs],
            finish_ns: vec![None; n_jobs],
            events,
            fleet,
            lost,
            device_stats,
            rounds,
            makespan_ns,
        },
    );
    Ok(ClusterOutcome { report, details })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CHECKPOINT_COST_NS, RESTORE_COST_NS};
    use crate::job::JobPolicy;
    use crate::workload::{DevicePool, Workload};
    use crate::Cluster;
    use mimose_chaos::{DeviceFault, FaultSpec, FleetFaultPlan};
    use mimose_data::presets;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_planner::PolicyKind;

    fn small(devices: usize) -> crate::ClusterBuilder {
        Cluster::builder()
            .devices(DevicePool::v100(devices))
            .workload(Workload::mixed(2))
    }

    fn run(builder: crate::ClusterBuilder) -> ClusterOutcome {
        builder.run().expect("spec is well-formed")
    }

    #[test]
    fn graph_pass_evidence_reaches_the_report() {
        let outcome = run(small(2));
        let mut strictly_lower = 0;
        for job in &outcome.report.jobs {
            let raw = job.graph_raw_peak_bytes.expect("raw peak recorded");
            let opt = job.graph_opt_peak_bytes.expect("opt peak recorded");
            assert!(
                opt <= raw,
                "{}: optimized predicted peak {opt} B above raw {raw} B",
                job.name
            );
            if opt < raw {
                strictly_lower += 1;
            }
        }
        // Budget-capped policies (DTR) predict their budget either way;
        // every planner-predicted job must show the pipeline's credit.
        assert!(strictly_lower > 0, "no job's predicted peak moved");
        let json = outcome.report.to_json();
        assert!(json.contains("\"graph_raw_peak_bytes\":"));
        assert!(json.contains("\"graph_opt_peak_bytes\":"));
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let a = run(small(2)).report.to_json();
        let b = run(small(2)).report.to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let serial = run(small(3).threads(1)).report.to_json();
        let parallel = run(small(3).threads(0)).report.to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_schedule_policy_completes_the_workload() {
        for schedule in [
            SchedulePolicy::Fifo,
            SchedulePolicy::ShortestPredicted,
            SchedulePolicy::BestFitMemory,
        ] {
            let outcome = run(small(2).schedule(schedule));
            assert_eq!(outcome.report.schedule, schedule.name());
            assert_eq!(outcome.report.mode, "bsp");
            for job in &outcome.report.jobs {
                assert_eq!(
                    job.outcome,
                    JobOutcome::Completed,
                    "{} under {}",
                    job.name,
                    schedule.name()
                );
            }
            assert!(outcome.report.makespan_ns > 0);
            assert!(outcome.report.utilization_pct > 0.0);
            assert!(outcome.report.events.is_empty());
            assert_eq!(outcome.report.fleet.migrations, 0);
        }
    }

    #[test]
    fn slo_rollup_is_folded_in_bsp_mode_too() {
        let outcome = run(small(2));
        let slo = &outcome.report.slo;
        assert!(slo.iter_latency_p50_ns > 0);
        assert!(slo.iter_latency_p50_ns <= slo.iter_latency_p99_ns);
        assert!(slo.queue_wait_p50_ns <= slo.queue_wait_p99_ns);
        assert_eq!(slo.goodput_iters, 8 * 2);
        assert!(slo.goodput_iters_per_s > 0.0);
        assert_eq!(slo.rejected_jobs, 0);
        let json = outcome.report.to_json();
        assert!(json.contains("\"slo\":{\"queue_wait_p50_ns\":"));
    }

    #[test]
    fn verified_admits_reach_the_fleet_report() {
        let outcome = run(small(2));
        let adm = &outcome.report.admission;
        assert!(adm.verified_admits <= adm.admitted);
        let json = outcome.report.to_json();
        assert!(json.contains(&format!("\"verified_admits\":{}", adm.verified_admits)));
    }

    #[test]
    fn impossible_job_is_rejected_not_hung() {
        let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let ds = presets::glue_qqp();
        let job = crate::JobSpec::new(
            "too-big",
            model,
            ds,
            JobPolicy::Planner(PolicyKind::Sublinear, 1 << 20),
            2,
            1,
        );
        let mut tiny = mimose_simgpu::DeviceProfile::v100();
        tiny.total_mem_bytes = 1 << 20; // 1 MiB: below any BERT floor
        let outcome = run(Cluster::builder()
            .devices(DevicePool::custom(vec![tiny]))
            .workload(Workload::custom(vec![job])));
        assert_eq!(outcome.report.jobs[0].outcome, JobOutcome::Rejected);
        assert_eq!(outcome.report.jobs[0].device, None);
        assert_eq!(outcome.report.admission.rejected, 1);
        assert_eq!(outcome.report.makespan_ns, 0);
        // Satellite: the rejection explains itself.
        let reason = outcome.report.jobs[0].admission_reason.as_ref().unwrap();
        assert!(reason.contains("all-checkpoint floor"), "{reason}");
    }

    #[test]
    fn more_devices_never_lengthen_the_makespan() {
        let one = run(small(1)).report.makespan_ns;
        let two = run(small(2)).report.makespan_ns;
        assert!(two <= one, "two devices {two} > one device {one}");
    }

    #[test]
    fn fleet_faults_replay_byte_identically() {
        let faults = FleetFaultPlan::new(FaultSpec {
            alloc_failure_rate: 0.3,
            ..FaultSpec::none(99)
        });
        let mk = || small(2).faults(faults.clone()).record(true);
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.report.to_json(), b.report.to_json());
        // Recording captured event streams for every executed iteration.
        for (da, db) in a.details.iter().zip(&b.details) {
            assert_eq!(da.records.len(), da.reports.len());
            assert_eq!(format!("{:?}", da.reports), format!("{:?}", db.reports));
        }
    }

    #[test]
    fn lost_device_migrates_its_job_and_the_fleet_finishes() {
        // 4 devices, 8 jobs, 4 iterations each; device 1 dies permanently
        // in round 2, mid-flight. Everything must still finish (the
        // displaced job via migration), with the full event chain.
        let faults =
            FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
        let outcome = run(Cluster::builder()
            .devices(DevicePool::v100(4))
            .workload(Workload::mixed(4))
            .faults(faults));
        let r = &outcome.report;
        assert!(
            r.jobs.iter().all(|j| j.outcome.finished()),
            "{:?}",
            r.jobs
                .iter()
                .map(|j| (j.name.clone(), j.outcome.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(r.fleet.devices_lost, 1);
        assert!(r.fleet.migrations >= 1);
        assert_eq!(r.fleet.checkpoints, r.fleet.migrations);
        assert_eq!(r.fleet.shed_jobs, 0);
        assert!(r.devices[1].lost);
        // The migrated job's evidence: two placements, full iteration
        // count, chained events, attributed overhead.
        let moved: Vec<_> = r.jobs.iter().filter(|j| j.migrations > 0).collect();
        assert!(!moved.is_empty());
        for j in moved {
            assert_eq!(j.outcome, JobOutcome::Migrated);
            assert_eq!(j.iters, 4);
            assert!(j.placements.len() >= 2);
            assert_eq!(j.placements.iter().map(|p| p.iters).sum::<usize>(), 4);
            assert_eq!(
                j.fleet_overhead_ns,
                (CHECKPOINT_COST_NS + RESTORE_COST_NS) * j.migrations as u64
            );
            assert!(j.retries >= 1);
        }
        let kinds: Vec<_> = r.events.iter().map(|e| e.kind.tag()).collect();
        for k in ["device-down", "checkpoint", "requeue", "backoff", "migrate"] {
            assert!(kinds.contains(&k), "missing {k} in {kinds:?}");
        }
        // Event timestamps never run backwards.
        for w in r.events.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }

    #[test]
    fn device_loss_replays_byte_identically_across_threads() {
        let mk = |threads| {
            let faults =
                FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
            Cluster::builder()
                .devices(DevicePool::v100(4))
                .workload(Workload::mixed(4))
                .faults(faults)
                .threads(threads)
                .record(true)
        };
        let serial = run(mk(1)).report.to_json();
        let parallel = run(mk(4)).report.to_json();
        assert_eq!(serial, parallel);
        assert_eq!(serial, run(mk(1)).report.to_json());
    }

    #[test]
    fn transient_outage_returns_the_device_to_service() {
        // Device 0 of 2 goes down for 3 rounds; its job migrates to the
        // survivor and the device serves again after the outage.
        let faults = FleetFaultPlan::none(0).with_device_fault(
            0,
            DeviceFault::Down {
                at_round: 1,
                duration: 3,
            },
        );
        let outcome = run(Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(3))
            .faults(faults));
        let r = &outcome.report;
        assert!(r.jobs.iter().all(|j| j.outcome.finished()));
        assert_eq!(r.fleet.devices_lost, 0);
        assert!(!r.devices[0].lost);
        let kinds: Vec<_> = r.events.iter().map(|e| e.kind.tag()).collect();
        assert!(kinds.contains(&"device-down"));
        assert!(kinds.contains(&"device-up"));
        // The down event knows when the device returns.
        let down = r.events.iter().find_map(|e| match &e.kind {
            FleetEventKind::DeviceDown {
                device: 0,
                until_round,
            } => Some(*until_round),
            _ => None,
        });
        assert_eq!(down, Some(Some(4)));
        // Device 0 ran iterations after returning (it served again).
        assert!(r.devices[0].iters > 0);
    }

    #[test]
    fn losing_every_device_sheds_the_backlog_explicitly() {
        let faults = FleetFaultPlan::none(0)
            .with_device_fault(0, DeviceFault::Lost { at_round: 1 })
            .with_device_fault(1, DeviceFault::Lost { at_round: 1 });
        let spec = Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(4))
            .faults(faults)
            .build()
            .expect("valid spec");
        let outcome = run_bsp(&spec).expect("validated spec runs");
        let r = &outcome.report;
        // No hangs, no silent drops: every job has an explicit outcome.
        for j in &r.jobs {
            assert!(
                matches!(j.outcome, JobOutcome::Shed(_)) || j.outcome.finished(),
                "{}: {:?}",
                j.name,
                j.outcome
            );
        }
        assert!(r.fleet.shed_jobs > 0);
        assert_eq!(r.fleet.devices_lost, 2);
        // Within a round, shedding drops the lowest-priority jobs first.
        let shed_events: Vec<(usize, usize)> = r
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                FleetEventKind::Shed { job, .. } => Some((e.round, *job)),
                _ => None,
            })
            .collect();
        assert!(shed_events.len() > 1);
        for w in shed_events.windows(2) {
            let ((ra, a), (rb, b)) = (w[0], w[1]);
            if ra == rb {
                assert!(
                    (spec.jobs[a].priority, a) <= (spec.jobs[b].priority, b),
                    "shed order not lowest-priority-first: {a} before {b}"
                );
            }
        }
    }

    #[test]
    fn retry_budget_bounds_repeated_displacement() {
        // One device that flaps down every other round around a 1-device
        // pool forces repeated displacement of the same job; with a
        // 1-retry budget the job must fail explicitly, not loop forever.
        let faults = FleetFaultPlan::none(0)
            .with_device_fault(
                0,
                DeviceFault::Down {
                    at_round: 1,
                    duration: 1,
                },
            )
            .with_device_fault(
                0,
                DeviceFault::Down {
                    at_round: 3,
                    duration: 1,
                },
            )
            .with_device_fault(
                0,
                DeviceFault::Down {
                    at_round: 5,
                    duration: 1,
                },
            );
        let jobs = vec![Workload::mixed(8).into_jobs().remove(0)];
        let outcome = run(Cluster::builder()
            .devices(DevicePool::v100(1))
            .workload(Workload::custom(jobs))
            .faults(faults)
            .max_retries(1));
        let job = &outcome.report.jobs[0];
        assert!(
            matches!(job.outcome, JobOutcome::Failed(_)) || job.outcome.finished(),
            "{:?}",
            job.outcome
        );
        assert!(
            job.retries <= 2,
            "retries {} exceeded budget+1",
            job.retries
        );
        if let JobOutcome::Failed(reason) = &job.outcome {
            assert!(reason.contains("retry budget"), "{reason}");
        }
    }
}
