//! Property: a 1-job/1-device cluster run is byte-identical to driving
//! the same job through `Session::run` directly — the scheduler adds
//! orchestration, never behavior.

use mimose_cluster::{Cluster, DevicePool, JobOutcome, JobPolicy, JobSpec, Workload};
use mimose_data::presets;
use mimose_exec::Session;
use mimose_models::builders::{bert_base, BertHead};
use mimose_planner::PolicyKind;
use mimose_simgpu::DeviceProfile;

#[test]
fn single_job_single_device_equals_session_over_200_seeds() {
    let model = bert_base(BertHead::Classification { labels: 2 }).optimize();
    let dataset = presets::glue_qqp();
    let worst = model.profile(&dataset.worst_case()).unwrap();
    let device = DeviceProfile::v100();

    for seed in 0..200u64 {
        // Vary the run shape with the seed too, not just the stream.
        let iters = 1 + (seed as usize % 4);
        let budget = (4 + seed as usize % 5) << 30;
        let kind = match seed % 3 {
            0 => PolicyKind::Sublinear,
            1 => PolicyKind::Baseline,
            _ => PolicyKind::Capuchin,
        };

        let job = JobSpec::new(
            "solo",
            model.clone(),
            dataset.clone(),
            JobPolicy::Planner(kind, budget),
            iters,
            seed,
        );
        let outcome = Cluster::builder()
            .devices(DevicePool::custom(vec![device.clone()]))
            .workload(Workload::custom(vec![job]))
            .run()
            .unwrap();
        assert_eq!(
            outcome.report.jobs[0].outcome,
            JobOutcome::Completed,
            "seed {seed}"
        );

        let mut session = Session::builder(&model, &dataset)
            .policy_boxed(kind.build_on(&worst, budget, &device))
            .device(device.clone())
            .seed(seed)
            .build()
            .unwrap();
        let reports = session.run(iters).unwrap();

        assert_eq!(
            format!("{:?}", outcome.details[0].reports),
            format!("{reports:?}"),
            "seed {seed}: cluster and session diverged"
        );
        assert_eq!(
            format!("{:?}", outcome.details[0].summary),
            format!("{:?}", session.summary()),
            "seed {seed}: summaries diverged"
        );
    }
}
