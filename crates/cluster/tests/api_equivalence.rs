//! Migration-safety properties for the builder API redesign.
//!
//! 1. The legacy surface (`run_cluster` + `mixed_workload` + `v100_pool`)
//!    and the builder (`Cluster::builder()...run()`) are the *same*
//!    scheduler: their reports are byte-identical on the canonical
//!    workload, across schedule policies and fault plans.
//! 2. The event-driven mode degenerates to BSP: with every arrival at
//!    `t = 0`, no faults and no queue bound, each job's per-iteration
//!    evidence (reports, outcome, iteration count) matches the BSP run
//!    job-for-job — the two drivers differ in *when* decisions happen,
//!    never in *how* a job executes.

use mimose_chaos::{DeviceFault, FleetFaultPlan};
use mimose_cluster::{
    mixed_workload, run_cluster, v100_pool, ArrivalProcess, Cluster, ClusterSpec, DevicePool,
    JobOutcome, Mode, SchedulePolicy, Workload,
};

#[test]
fn builder_and_legacy_wrapper_are_byte_identical() {
    for schedule in [
        SchedulePolicy::Fifo,
        SchedulePolicy::ShortestPredicted,
        SchedulePolicy::BestFitMemory,
    ] {
        let legacy =
            run_cluster(&ClusterSpec::new(mixed_workload(2), v100_pool(2)).schedule(schedule));
        let built = Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(2))
            .schedule(schedule)
            .run()
            .expect("canonical workload runs");
        assert_eq!(
            legacy.report.to_json(),
            built.report.to_json(),
            "{} diverged",
            schedule.name()
        );
    }
}

#[test]
fn builder_and_legacy_wrapper_agree_under_faults() {
    let faults = || FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
    let legacy = run_cluster(
        &ClusterSpec::new(mixed_workload(4), v100_pool(4))
            .faults(faults())
            .record(true),
    );
    let built = Cluster::builder()
        .devices(DevicePool::v100(4))
        .workload(Workload::mixed(4))
        .faults(faults())
        .record(true)
        .run()
        .expect("faulted workload runs");
    assert_eq!(legacy.report.to_json(), built.report.to_json());
    for (a, b) in legacy.details.iter().zip(&built.details) {
        assert_eq!(format!("{:?}", a.reports), format!("{:?}", b.reports));
        assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
    }
}

#[test]
fn event_mode_with_degenerate_arrivals_reproduces_bsp_per_job() {
    let bsp = Cluster::builder()
        .devices(DevicePool::v100(2))
        .workload(Workload::mixed(2))
        .run()
        .expect("bsp runs");
    let des = Cluster::builder()
        .devices(DevicePool::v100(2))
        .workload(Workload::mixed(2))
        .mode(Mode::EventDriven)
        .arrivals(ArrivalProcess::Immediate)
        .run()
        .expect("event-driven runs");

    assert_eq!(bsp.report.mode, "bsp");
    assert_eq!(des.report.mode, "event-driven");
    // Placement can differ (the event loop frees devices at real
    // iteration boundaries, BSP at round barriers), but on a homogeneous
    // pool with no faults each job's execution is placement-independent:
    // same iterations, same per-iteration evidence, same outcome.
    for (a, b) in bsp.details.iter().zip(&des.details) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            format!("{:?}", a.reports),
            format!("{:?}", b.reports),
            "{}: iteration evidence diverged between modes",
            a.name
        );
        assert_eq!(
            format!("{:?}", a.summary),
            format!("{:?}", b.summary),
            "{}: summaries diverged between modes",
            a.name
        );
    }
    for (a, b) in bsp.report.jobs.iter().zip(&des.report.jobs) {
        assert_eq!(a.outcome, JobOutcome::Completed, "{}", a.name);
        assert_eq!(b.outcome, JobOutcome::Completed, "{}", b.name);
        assert_eq!(a.iters, b.iters, "{}", a.name);
        assert_eq!(a.total_ns, b.total_ns, "{}", a.name);
        assert_eq!(a.max_peak_bytes, b.max_peak_bytes, "{}", a.name);
    }
    // Both modes did the same total work.
    assert_eq!(bsp.report.busy_ns, des.report.busy_ns);
    assert_eq!(bsp.report.slo.goodput_iters, des.report.slo.goodput_iters);
}

#[test]
fn event_mode_is_thread_knob_independent() {
    let mk = |threads| {
        Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(2))
            .mode(Mode::EventDriven)
            .arrivals(ArrivalProcess::poisson(300_000, 9))
            .threads(threads)
            .run()
            .expect("serving run")
    };
    assert_eq!(mk(1).report.to_json(), mk(8).report.to_json());
}
