//! Well-formedness checks for [`ModelProfile`] graphs.
//!
//! Every planner and both engines consume profiles; a malformed one (broken
//! block chain, tensor accounting that disagrees with the block totals,
//! non-finite costs) corrupts every downstream result silently. These
//! invariants hold by construction for `ModelGraph::profile` output — the
//! auditor exists to catch hand-built or mutated profiles.

use crate::diag::Diagnostic;
use mimose_models::ModelProfile;
use mimose_simgpu::ARENA_ALIGN;

/// Lint `profile` for structural and accounting invariants.
#[must_use]
pub fn lint_profile(profile: &ModelProfile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let subject = profile.model.clone();
    if profile.blocks.is_empty() {
        diags.push(Diagnostic::error(
            "empty-profile",
            subject,
            "profile has zero blocks",
        ));
        return diags;
    }
    for (i, b) in profile.blocks.iter().enumerate() {
        let bsub = format!("{subject}/{}", b.name);
        if b.index != i {
            diags.push(Diagnostic::error(
                "block-index-mismatch",
                bsub.clone(),
                format!("block at position {i} carries index {}", b.index),
            ));
        }
        let tensor_sum: usize = b.tensors.iter().map(|t| t.bytes).sum();
        if tensor_sum != b.act_bytes {
            diags.push(Diagnostic::error(
                "tensor-sum-mismatch",
                bsub.clone(),
                format!(
                    "per-tensor records sum to {tensor_sum} B but act_bytes is {} B",
                    b.act_bytes
                ),
            ));
        }
        for (name, v) in [("fwd_flops", b.fwd_flops), ("bwd_flops", b.bwd_flops)] {
            if !v.is_finite() || v < 0.0 {
                diags.push(Diagnostic::error(
                    "invalid-flops",
                    bsub.clone(),
                    format!("{name} is {v}"),
                ));
            }
        }
        for (name, v) in [
            ("act_bytes", b.act_bytes),
            ("out_bytes", b.out_bytes),
            ("in_bytes", b.in_bytes),
        ] {
            if v % ARENA_ALIGN != 0 {
                diags.push(Diagnostic::warning(
                    "unaligned-profile-bytes",
                    bsub.clone(),
                    format!("{name} = {v} B is not a multiple of {ARENA_ALIGN}"),
                ));
            }
        }
        if i + 1 < profile.blocks.len() {
            let next = &profile.blocks[i + 1];
            if next.in_bytes != b.out_bytes {
                diags.push(Diagnostic::error(
                    "io-chain-broken",
                    bsub,
                    format!(
                        "output is {} B but the next block ('{}') expects a {} B input",
                        b.out_bytes, next.name, next.in_bytes
                    ),
                ));
            }
        }
    }
    if profile.const_bytes == 0 {
        diags.push(Diagnostic::warning(
            "zero-const-footprint",
            subject.clone(),
            "profile claims no weights/optimizer footprint",
        ));
    }
    if profile.input_bytes == 0 {
        diags.push(Diagnostic::warning(
            "zero-input",
            subject,
            "profile claims a zero-byte input tensor",
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use mimose_models::builders::{bert_base, t5_base, BertHead};
    use mimose_models::ModelInput;

    #[test]
    fn generated_profiles_are_well_formed() {
        for (model, input) in [
            (
                bert_base(BertHead::Classification { labels: 2 }),
                ModelInput::tokens(32, 128),
            ),
            (t5_base(), ModelInput::tokens(8, 200)),
        ] {
            let p = model.profile(&input).unwrap();
            let diags = lint_profile(&p);
            assert!(!has_errors(&diags), "{}: {diags:?}", model.name);
        }
    }

    #[test]
    fn mutated_profile_is_caught() {
        let mut p = bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, 128))
            .unwrap();
        p.blocks[3].act_bytes += 1; // breaks tensor-sum and alignment
        p.blocks[5].index = 0;
        p.blocks[7].fwd_flops = f64::NAN;
        p.blocks[2].out_bytes += ARENA_ALIGN; // breaks the io chain
        let diags = lint_profile(&p);
        for check in [
            "tensor-sum-mismatch",
            "block-index-mismatch",
            "invalid-flops",
            "io-chain-broken",
        ] {
            assert!(
                diags.iter().any(|d| d.check == check),
                "missing {check}: {diags:?}"
            );
        }
    }
}
