//! Diagnostic types shared by every audit pass.
//!
//! Each pass returns a flat `Vec<Diagnostic>`; callers decide how to render
//! them (the `audit` binary prints JSON and exits non-zero on any
//! [`Severity::Error`]).

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth surfacing, never actionable on its own.
    Info,
    /// Suspicious but not provably wrong (e.g. a degenerate plan).
    Warning,
    /// A violated invariant: the trace, plan, or profile is broken.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from an audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Machine-readable check id in kebab-case (e.g. `double-free`).
    pub check: &'static str,
    /// What was audited (a plan name, an event index, a block name …).
    pub subject: String,
    /// Human-readable explanation with the concrete numbers.
    pub message: String,
}

impl Diagnostic {
    /// An [`Severity::Error`] finding.
    pub fn error(
        check: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            check,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// A [`Severity::Warning`] finding.
    pub fn warning(
        check: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            check,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// An [`Severity::Info`] finding.
    pub fn info(
        check: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Info,
            check,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// Render as a single JSON object (no external JSON crate — the
    /// diagnostic shape is flat strings, so escaping by hand is safe).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"check\":\"{}\",\"subject\":\"{}\",\"message\":\"{}\"}}",
            self.severity.label(),
            json_escape(self.check),
            json_escape(&self.subject),
            json_escape(&self.message),
        )
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.check, self.subject, self.message
        )
    }
}

/// Escape a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a slice of diagnostics as a JSON array.
#[must_use]
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Whether any diagnostic is an [`Severity::Error`].
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The worst severity present, if any.
#[must_use]
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let d = Diagnostic::error("double-free", "event 3", "id 7 freed \"twice\"");
        let j = d.to_json();
        assert!(j.contains("\\\"twice\\\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn array_rendering_and_predicates() {
        let diags = vec![
            Diagnostic::info("leak", "end", "1 live allocation"),
            Diagnostic::error("double-free", "event 3", "boom"),
        ];
        assert!(has_errors(&diags));
        assert_eq!(max_severity(&diags), Some(Severity::Error));
        assert!(!has_errors(&diags[..1]));
        let arr = to_json_array(&diags);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("severity").count(), 2);
        assert_eq!(to_json_array(&[]), "[]");
    }
}
