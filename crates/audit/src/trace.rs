//! Allocator-trace auditing: replay a [`TraceEvent`] stream through an
//! independent shadow allocator and cross-check every invariant the arena
//! is supposed to maintain.
//!
//! The shadow keeps only the live address ranges, reconstructing the free
//! list as the complement of the live set — so it shares no code (and no
//! bugs) with the arena's `BTreeMap` free-list bookkeeping. Detected
//! classes:
//!
//! * **double-free / foreign free** — freeing an id that is not live;
//! * **use-after-free id reuse** — an id handed out twice;
//! * **overlapping live ranges** — two allocations sharing bytes;
//! * **out-of-bounds / misaligned carves**;
//! * **missed coalescing / spurious OOM** — the arena reported failure (or
//!   a `largest_free`) inconsistent with the true gap structure of the
//!   address space, which is exactly what broken coalescing looks like;
//! * **compaction accounting** — a `Compact` event's reported moved-byte
//!   count disagrees with the slide the live set actually requires;
//! * **stats divergence** — recomputed `peak_used` / `peak_frag` /
//!   event counts (including compactions and injected failures) disagree
//!   with the arena's own [`ArenaStats`].

use crate::diag::Diagnostic;
use mimose_runtime::align_up;
use mimose_simgpu::{ArenaStats, TraceEvent, ARENA_ALIGN};
use std::collections::{BTreeMap, HashSet};

/// Shadow replay state: live ranges indexed both ways, plus recomputed
/// statistics.
struct Shadow {
    capacity: usize,
    /// id → (offset, size).
    by_id: BTreeMap<u64, (usize, usize)>,
    /// offset → (size, id). Disjointness of this map is the overlap check.
    by_offset: BTreeMap<usize, (usize, u64)>,
    /// Ids freed at least once (distinguishes double-free from foreign id).
    freed: HashSet<u64>,
    /// Ids ever issued (detects id reuse).
    issued: HashSet<u64>,
    used: usize,
    stats: ArenaStats,
}

impl Shadow {
    fn new(capacity: usize) -> Self {
        Shadow {
            capacity,
            by_id: BTreeMap::new(),
            by_offset: BTreeMap::new(),
            freed: HashSet::new(),
            issued: HashSet::new(),
            used: 0,
            stats: ArenaStats::default(),
        }
    }

    fn free_bytes(&self) -> usize {
        self.capacity - self.used
    }

    /// Largest gap between live ranges (the true `largest_free`),
    /// reconstructed from the live set alone.
    fn largest_gap(&self) -> usize {
        let mut largest = 0usize;
        let mut cursor = 0usize;
        for (&off, &(size, _)) in &self.by_offset {
            if off > cursor {
                largest = largest.max(off - cursor);
            }
            cursor = cursor.max(off + size);
        }
        if self.capacity > cursor {
            largest = largest.max(self.capacity - cursor);
        }
        largest
    }

    fn frag(&self) -> usize {
        self.free_bytes().saturating_sub(self.largest_gap())
    }
}

/// Replay `events` against an arena of `capacity` bytes and report every
/// violated invariant. When `stats` is given, the recomputed statistics
/// must match it field for field.
///
/// Leaked allocations at the end of the trace are reported at info
/// severity: engines legitimately end an iteration with the constant
/// footprint still live.
#[must_use]
pub fn audit_trace(
    capacity: usize,
    events: &[TraceEvent],
    stats: Option<&ArenaStats>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut s = Shadow::new(capacity);

    for (ev_idx, ev) in events.iter().enumerate() {
        let subject = format!("event {ev_idx}");
        match *ev {
            TraceEvent::Alloc {
                id,
                offset,
                size,
                requested,
            } => {
                let raw = id.raw();
                if s.by_id.contains_key(&raw) {
                    diags.push(Diagnostic::error(
                        "alloc-id-reuse",
                        subject.clone(),
                        format!("id {raw} allocated while already live"),
                    ));
                } else if s.issued.contains(&raw) {
                    diags.push(Diagnostic::error(
                        "alloc-id-reuse",
                        subject.clone(),
                        format!("id {raw} reissued after being freed (dangling-handle hazard)"),
                    ));
                }
                if offset % ARENA_ALIGN != 0 || size % ARENA_ALIGN != 0 {
                    diags.push(Diagnostic::error(
                        "misaligned-carve",
                        subject.clone(),
                        format!(
                            "range [{offset}, {}) not aligned to {ARENA_ALIGN} B",
                            offset + size
                        ),
                    ));
                }
                if offset + size > capacity {
                    diags.push(Diagnostic::error(
                        "out-of-bounds",
                        subject.clone(),
                        format!(
                            "range [{offset}, {}) exceeds capacity {capacity}",
                            offset + size
                        ),
                    ));
                }
                if size != align_up(requested) {
                    diags.push(Diagnostic::error(
                        "size-mismatch",
                        subject.clone(),
                        format!(
                            "carved {size} B for a {requested} B request (expected {} B)",
                            align_up(requested)
                        ),
                    ));
                }
                // Overlap against the nearest live neighbours on each side.
                if let Some((&poff, &(psize, pid))) = s.by_offset.range(..=offset).next_back() {
                    if poff + psize > offset {
                        diags.push(Diagnostic::error(
                            "overlapping-live-ranges",
                            subject.clone(),
                            format!(
                                "[{offset}, {}) overlaps live id {pid} at [{poff}, {})",
                                offset + size,
                                poff + psize
                            ),
                        ));
                    }
                }
                if let Some((&noff, &(nsize, nid))) = s.by_offset.range(offset + 1..).next() {
                    if offset + size > noff {
                        diags.push(Diagnostic::error(
                            "overlapping-live-ranges",
                            subject.clone(),
                            format!(
                                "[{offset}, {}) overlaps live id {nid} at [{noff}, {})",
                                offset + size,
                                noff + nsize
                            ),
                        ));
                    }
                }
                s.issued.insert(raw);
                s.by_id.insert(raw, (offset, size));
                s.by_offset.insert(offset, (size, raw));
                s.used += size;
                s.stats.allocs += 1;
                s.stats.peak_used = s.stats.peak_used.max(s.used);
                // Mirror the arena exactly: peak_frag and peak_extent are
                // sampled after each *successful* allocation.
                s.stats.peak_frag = s.stats.peak_frag.max(s.frag());
                s.stats.peak_extent = s.stats.peak_extent.max(offset + size);
                s.stats.peak_footprint = s.stats.peak_footprint.max(s.used + s.frag());
            }
            TraceEvent::Free { id, offset, size } => {
                let raw = id.raw();
                match s.by_id.remove(&raw) {
                    None => {
                        if s.freed.contains(&raw) {
                            diags.push(Diagnostic::error(
                                "double-free",
                                subject.clone(),
                                format!("id {raw} freed again after an earlier free"),
                            ));
                        } else {
                            diags.push(Diagnostic::error(
                                "foreign-free",
                                subject.clone(),
                                format!("free of id {raw} that was never allocated"),
                            ));
                        }
                    }
                    Some((live_off, live_size)) => {
                        if live_off != offset || live_size != size {
                            diags.push(Diagnostic::error(
                                "free-metadata-mismatch",
                                subject.clone(),
                                format!(
                                    "id {raw} freed as [{offset}, {}) but was carved at [{live_off}, {})",
                                    offset + size,
                                    live_off + live_size
                                ),
                            ));
                        }
                        s.by_offset.remove(&live_off);
                        s.used -= live_size;
                        s.stats.frees += 1;
                        s.stats.peak_footprint = s.stats.peak_footprint.max(s.used + s.frag());
                    }
                }
                s.freed.insert(raw);
            }
            TraceEvent::Oom {
                requested,
                free_bytes,
                largest_free,
            } => {
                s.stats.oom_events += 1;
                let true_free = s.free_bytes();
                let true_largest = s.largest_gap();
                if free_bytes != true_free {
                    diags.push(Diagnostic::error(
                        "oom-accounting",
                        subject.clone(),
                        format!(
                            "OOM reported {free_bytes} B free but the live set leaves {true_free} B"
                        ),
                    ));
                }
                if largest_free != true_largest {
                    diags.push(Diagnostic::error(
                        "missed-coalescing",
                        subject.clone(),
                        format!(
                            "OOM reported largest contiguous range {largest_free} B but the \
                             address space has a {true_largest} B gap — the free list is not \
                             coalescing adjacent ranges"
                        ),
                    ));
                }
                if requested <= true_largest {
                    diags.push(Diagnostic::error(
                        "spurious-oom",
                        subject,
                        format!(
                            "OOM for a {requested} B request although a {true_largest} B \
                             contiguous gap exists"
                        ),
                    ));
                }
            }
            TraceEvent::InjectedOom { requested: _ } => {
                // A fault-injection artefact, not an allocator decision: the
                // arena state is untouched, so there is nothing to check —
                // only the counter to mirror.
                s.stats.injected_ooms += 1;
            }
            TraceEvent::Compact { moved } => {
                // Mirror the arena's deterministic slide: live ranges keep
                // their address order and pack from offset 0. The arena
                // reports the total bytes it copied; recompute that figure
                // independently from the shadow live set.
                let ranges: Vec<(usize, (usize, u64))> =
                    s.by_offset.iter().map(|(&o, &v)| (o, v)).collect();
                let mut cursor = 0usize;
                let mut shadow_moved = 0usize;
                s.by_offset.clear();
                for (off, (size, raw)) in ranges {
                    if off != cursor {
                        shadow_moved += size;
                    }
                    s.by_offset.insert(cursor, (size, raw));
                    s.by_id.insert(raw, (cursor, size));
                    cursor += size;
                }
                if shadow_moved != moved {
                    diags.push(Diagnostic::error(
                        "compact-accounting",
                        subject.clone(),
                        format!(
                            "compaction reported {moved} B moved but the live set \
                             requires moving {shadow_moved} B"
                        ),
                    ));
                }
                s.stats.compactions += 1;
            }
            TraceEvent::Reset => {
                s.by_id.clear();
                s.by_offset.clear();
                s.used = 0;
            }
        }
    }

    if !s.by_id.is_empty() {
        diags.push(Diagnostic::info(
            "live-at-end",
            "end of trace",
            format!(
                "{} allocation(s) totalling {} B still live (normal for the constant \
                 footprint; a growing count across iterations is a leak)",
                s.by_id.len(),
                s.used
            ),
        ));
    }

    if let Some(actual) = stats {
        let fields: [(&'static str, u64, u64); 9] = [
            ("allocs", s.stats.allocs, actual.allocs),
            ("frees", s.stats.frees, actual.frees),
            ("oom_events", s.stats.oom_events, actual.oom_events),
            ("compactions", s.stats.compactions, actual.compactions),
            ("injected_ooms", s.stats.injected_ooms, actual.injected_ooms),
            (
                "peak_used",
                s.stats.peak_used as u64,
                actual.peak_used as u64,
            ),
            (
                "peak_frag",
                s.stats.peak_frag as u64,
                actual.peak_frag as u64,
            ),
            (
                "peak_extent",
                s.stats.peak_extent as u64,
                actual.peak_extent as u64,
            ),
            (
                "peak_footprint",
                s.stats.peak_footprint as u64,
                actual.peak_footprint as u64,
            ),
        ];
        for (name, recomputed, reported) in fields {
            if recomputed != reported {
                diags.push(Diagnostic::error(
                    "stats-divergence",
                    format!("ArenaStats.{name}"),
                    format!("arena reports {reported} but the trace replays to {recomputed}"),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use mimose_simgpu::{AllocId, Arena};

    fn ev_alloc(id: u64, offset: usize, requested: usize) -> TraceEvent {
        TraceEvent::Alloc {
            id: AllocId::from_raw(id),
            offset,
            size: align_up(requested),
            requested,
        }
    }

    fn ev_free(id: u64, offset: usize, requested: usize) -> TraceEvent {
        TraceEvent::Free {
            id: AllocId::from_raw(id),
            offset,
            size: align_up(requested),
        }
    }

    #[test]
    fn clean_arena_trace_is_clean() {
        let mut a = Arena::new(1 << 20);
        a.set_tracing(true);
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(5000).unwrap();
        a.free(x);
        let z = a.alloc(700).unwrap();
        a.free(y);
        a.free(z);
        let stats = a.stats();
        let diags = audit_trace(a.capacity(), &a.take_trace(), Some(&stats));
        assert!(!has_errors(&diags), "{diags:?}");
        assert!(
            diags.is_empty(),
            "all freed, so not even a leak note: {diags:?}"
        );
    }

    #[test]
    fn oom_and_reset_replay_cleanly() {
        let mut a = Arena::new(4096);
        a.set_tracing(true);
        let _x = a.alloc(4096).unwrap();
        assert!(a.alloc(1).is_err());
        a.reset();
        let _y = a.alloc(512).unwrap();
        let stats = a.stats();
        let diags = audit_trace(a.capacity(), &a.take_trace(), Some(&stats));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn double_free_is_an_error() {
        let events = [ev_alloc(0, 0, 512), ev_free(0, 0, 512), ev_free(0, 0, 512)];
        let diags = audit_trace(4096, &events, None);
        assert!(diags.iter().any(|d| d.check == "double-free"), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn foreign_free_is_distinguished_from_double_free() {
        let diags = audit_trace(4096, &[ev_free(9, 0, 512)], None);
        assert!(diags.iter().any(|d| d.check == "foreign-free"), "{diags:?}");
    }

    #[test]
    fn overlapping_ranges_detected() {
        let events = [ev_alloc(0, 0, 1024), ev_alloc(1, 512, 1024)];
        let diags = audit_trace(1 << 20, &events, None);
        assert!(
            diags.iter().any(|d| d.check == "overlapping-live-ranges"),
            "{diags:?}"
        );
    }

    #[test]
    fn spurious_oom_and_missed_coalescing_detected() {
        // Live: [0,512) and [1536,2048); the gap [512,1536) is 1024 B.
        let events = [
            ev_alloc(0, 0, 512),
            ev_alloc(1, 1536, 512),
            TraceEvent::Oom {
                requested: 1024,
                free_bytes: 3072,
                largest_free: 512, // arena claims the gap is only 512 B
            },
        ];
        let diags = audit_trace(4096, &events, None);
        assert!(
            diags.iter().any(|d| d.check == "missed-coalescing"),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.check == "spurious-oom"), "{diags:?}");
    }

    #[test]
    fn stats_divergence_detected() {
        let mut a = Arena::new(1 << 20);
        a.set_tracing(true);
        let x = a.alloc(1000).unwrap();
        a.free(x);
        let mut stats = a.stats();
        stats.peak_used += 512; // tamper
        let diags = audit_trace(a.capacity(), &a.take_trace(), Some(&stats));
        assert!(
            diags
                .iter()
                .any(|d| d.check == "stats-divergence" && d.subject.contains("peak_used")),
            "{diags:?}"
        );
    }

    #[test]
    fn leak_is_reported_at_info_only() {
        let diags = audit_trace(4096, &[ev_alloc(0, 0, 512)], None);
        assert!(!has_errors(&diags));
        assert!(diags.iter().any(|d| d.check == "live-at-end"));
    }

    #[test]
    fn compact_and_injected_failures_replay_cleanly() {
        let mut a = Arena::new(1 << 20);
        a.set_tracing(true);
        a.set_spurious_failures(&[3]);
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(5000).unwrap();
        assert!(a.alloc(700).is_err(), "attempt 3 is armed to fail");
        a.free(x);
        let moved = a.compact();
        assert!(moved > 0, "y slides down over x's hole");
        let z = a.alloc(700).unwrap();
        a.free(y);
        a.free(z);
        let stats = a.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.injected_ooms, 1);
        let diags = audit_trace(a.capacity(), &a.take_trace(), Some(&stats));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn compact_accounting_mismatch_detected() {
        // Live [0,512) and [1024,1536): compacting must move exactly 512 B
        // (the second range), not the 5 B the event claims.
        let events = [
            ev_alloc(0, 0, 512),
            ev_alloc(1, 1024, 512),
            TraceEvent::Compact { moved: 5 },
        ];
        let diags = audit_trace(4096, &events, None);
        assert!(
            diags.iter().any(|d| d.check == "compact-accounting"),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_bounds_and_misalignment_detected() {
        let events = [
            TraceEvent::Alloc {
                id: AllocId::from_raw(0),
                offset: 100, // unaligned
                size: 512,
                requested: 512,
            },
            ev_alloc(1, 4096, 512), // beyond a 4096 B arena
        ];
        let diags = audit_trace(4096, &events, None);
        assert!(
            diags.iter().any(|d| d.check == "misaligned-carve"),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.check == "out-of-bounds"),
            "{diags:?}"
        );
    }
}
