//! # mimose-audit
//!
//! Invariant-checking and lint layer for the Mimose simulator: independent
//! re-derivations of properties the rest of the workspace is supposed to
//! maintain, reported as structured [`Diagnostic`]s with JSON output.
//!
//! Five passes:
//!
//! * [`audit_trace`] — replay an arena [`TraceEvent`](mimose_simgpu::TraceEvent)
//!   stream through a shadow allocator and catch double-frees, overlapping
//!   live ranges, missed coalescing / spurious OOMs, compaction accounting
//!   errors, and `ArenaStats` divergence;
//! * [`audit_exec_events`] — the same scrutiny applied to a recorded
//!   [`ExecEvent`](mimose_runtime::ExecEvent) stream from either engine:
//!   its allocator projection goes through the shadow replay and its
//!   embedded recovery events through the ladder lint;
//! * [`lint_plan`] / [`lint_fine_plan`] / [`lint_hybrid_plan`] — static
//!   checks of checkpoint plans against a model profile and a byte budget;
//! * [`lint_profile`] — well-formedness of the profile itself (block chain,
//!   tensor accounting, cost sanity);
//! * [`lint_recovery_trace`] — structural invariants of the executor's
//!   OOM-recovery ladder (ladder order, bounded retries, monotone demotion,
//!   terminal fallback, shrink discipline);
//! * [`lint_cluster`] — re-derivation of a fleet run's rollup (makespan,
//!   utilization, per-device counters, admission bookkeeping) from the
//!   per-job evidence, with event-fold cross-checks and dispatch-order
//!   structure;
//! * [`lint_schedule`] / [`lint_plan_schedule`] — the *static* family:
//!   `mimose-verify`'s symbolic def-use sanitizer over a plan's
//!   forward/backward timeline, reported through the same diagnostics
//!   before anything executes;
//! * [`lint_optimized_graph`] — `mimose-verify`'s graph-equivalence lint
//!   over an [`OptimizedGraph`](mimose_models::OptimizedGraph): the
//!   optimization pipeline must preserve FLOPs, boundaries and dataflow
//!   while only shrinking activation bytes, with every stash elision
//!   independently re-derived.
//!
//! The runtime counterpart — the planner/executor shadow checker that
//! compares the allocator's live bytes against the analytic residency curve
//! at every block boundary — lives in `mimose_exec::shadow` (it needs the
//! engines); this crate holds the offline/static passes. The `audit` binary
//! in `mimose-exp` runs every pass over every preset task × planner
//! combination and exits non-zero on any error-severity finding.

#![warn(missing_docs)]

mod cluster;
mod diag;
mod exec_stream;
mod lint;
mod profile;
mod recovery;
mod statics;
mod trace;

pub use cluster::lint_cluster;
pub use diag::{has_errors, json_escape, max_severity, to_json_array, Diagnostic, Severity};
pub use exec_stream::audit_exec_events;
pub use lint::{lint_fine_plan, lint_hybrid_plan, lint_plan};
pub use profile::lint_profile;
pub use recovery::lint_recovery_trace;
pub use statics::{lint_optimized_graph, lint_plan_schedule, lint_schedule};
pub use trace::audit_trace;
