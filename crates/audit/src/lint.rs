//! Static linting of checkpoint plans against a model profile.
//!
//! A plan can be structurally valid yet useless or infeasible; these passes
//! catch the failure modes *before* an engine burns an iteration on them:
//! shape mismatches, budget infeasibility under the analytic memory model,
//! degenerate all-drop / no-drop plans, and recompute-cost pathologies
//! (e.g. checkpointing the final block, which the paper's Fig 9 shows
//! saves nothing).

use crate::diag::Diagnostic;
use mimose_models::ModelProfile;
use mimose_planner::memory_model::{
    min_feasible_budget, peak_bytes, peak_bytes_fine, recompute_flops, FinePlan,
};
use mimose_planner::{peak_bytes_hybrid, BlockAction, CheckpointPlan, HybridPlan};

/// Lint a block-granularity [`CheckpointPlan`] for `profile`, optionally
/// against a byte `budget`. `subject` labels the diagnostics (planner or
/// task name).
#[must_use]
pub fn lint_plan(
    profile: &ModelProfile,
    plan: &CheckpointPlan,
    budget: Option<usize>,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = profile.blocks.len();
    if plan.len() != n {
        diags.push(Diagnostic::error(
            "plan-length-mismatch",
            subject,
            format!("plan covers {} blocks but the profile has {n}", plan.len()),
        ));
        return diags; // nothing below is meaningful on a mis-sized plan
    }
    if n == 0 {
        diags.push(Diagnostic::warning(
            "empty-profile",
            subject,
            "plan and profile cover zero blocks",
        ));
        return diags;
    }

    let peak = peak_bytes(profile, plan);
    if let Some(b) = budget {
        if min_feasible_budget(profile) > b {
            diags.push(Diagnostic::error(
                "budget-infeasible",
                subject,
                format!(
                    "no plan fits: even all-checkpointed peaks at {} B against a {b} B budget",
                    min_feasible_budget(profile)
                ),
            ));
        } else if peak > b {
            diags.push(Diagnostic::error(
                "plan-over-budget",
                subject,
                format!("analytic peak {peak} B exceeds the {b} B budget"),
            ));
        }
    }

    if plan.count() == n {
        diags.push(Diagnostic::warning(
            "plan-all-checkpointed",
            subject,
            "every block is checkpointed — maximal recompute; a scheduler \
             should keep blocks whenever the budget allows",
        ));
    } else if plan.count() == 0 {
        diags.push(Diagnostic::info(
            "plan-no-checkpointing",
            subject,
            "nothing checkpointed (correct when the full model fits the budget)",
        ));
    }

    // Fig 9: the last block's recomputation happens while everything else is
    // still resident, so checkpointing it costs FLOPs and saves no memory.
    if plan.is_checkpointed(n - 1) && plan.count() < n {
        diags.push(Diagnostic::warning(
            "useless-last-checkpoint",
            subject,
            "final block is checkpointed: pure recompute cost, zero peak reduction",
        ));
    }
    for i in plan.indices() {
        if profile.blocks[i].act_bytes == 0 {
            diags.push(Diagnostic::warning(
                "checkpoint-of-empty-block",
                subject,
                format!(
                    "block {i} ('{}') has no internal activations to drop",
                    profile.blocks[i].name
                ),
            ));
        }
    }

    // Recompute-cost sanity: recomputation re-runs a subset of the forward
    // pass, so it can never exceed it.
    let rec = recompute_flops(profile, plan);
    let fwd = profile.total_fwd_flops();
    if rec > fwd {
        diags.push(Diagnostic::error(
            "recompute-exceeds-forward",
            subject,
            format!("recompute cost {rec:.3e} FLOPs exceeds the full forward pass {fwd:.3e}"),
        ));
    }
    diags
}

/// Lint a tensor-granular [`FinePlan`] (MONeT) against `profile`.
#[must_use]
pub fn lint_fine_plan(
    profile: &ModelProfile,
    plan: &FinePlan,
    budget: Option<usize>,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = profile.blocks.len();
    if plan.len() != n {
        diags.push(Diagnostic::error(
            "plan-length-mismatch",
            subject,
            format!(
                "fine plan covers {} blocks but the profile has {n}",
                plan.len()
            ),
        ));
        return diags;
    }
    for (i, b) in profile.blocks.iter().enumerate() {
        let dropped = plan.dropped_bytes[i];
        let flops = plan.recompute_flops[i];
        if dropped > b.act_bytes {
            diags.push(Diagnostic::warning(
                "fine-drop-exceeds-activations",
                subject,
                format!(
                    "block {i} drops {dropped} B but only holds {} B of internals \
                     (the engine clamps, the surplus is dead weight in the plan)",
                    b.act_bytes
                ),
            ));
        }
        if !flops.is_finite() || flops < 0.0 {
            diags.push(Diagnostic::error(
                "invalid-recompute-flops",
                subject,
                format!("block {i} claims a recompute cost of {flops} FLOPs"),
            ));
        } else if dropped > 0 && flops == 0.0 && b.act_bytes > 0 {
            diags.push(Diagnostic::warning(
                "free-recompute-claimed",
                subject,
                format!("block {i} drops {dropped} B at a claimed cost of zero FLOPs"),
            ));
        }
    }
    if let Some(b) = budget {
        let peak = peak_bytes_fine(profile, plan);
        if peak > b {
            diags.push(Diagnostic::error(
                "plan-over-budget",
                subject,
                format!("analytic fine-plan peak {peak} B exceeds the {b} B budget"),
            ));
        }
    }
    diags
}

/// Lint a hybrid swap/recompute [`HybridPlan`] (Capuchin) against `profile`.
#[must_use]
pub fn lint_hybrid_plan(
    profile: &ModelProfile,
    plan: &HybridPlan,
    budget: Option<usize>,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = profile.blocks.len();
    if plan.actions.len() != n {
        diags.push(Diagnostic::error(
            "plan-length-mismatch",
            subject,
            format!(
                "hybrid plan covers {} blocks but the profile has {n}",
                plan.actions.len()
            ),
        ));
        return diags;
    }
    for (i, (a, b)) in plan.actions.iter().zip(&profile.blocks).enumerate() {
        if *a != BlockAction::Keep && b.act_bytes == 0 {
            diags.push(Diagnostic::warning(
                "checkpoint-of-empty-block",
                subject,
                format!(
                    "block {i} ('{}') is marked {a:?} but has no internal activations",
                    b.name
                ),
            ));
        }
    }
    if let Some(bud) = budget {
        let peak = peak_bytes_hybrid(profile, plan);
        if peak > bud {
            diags.push(Diagnostic::error(
                "plan-over-budget",
                subject,
                format!("analytic hybrid-plan peak {peak} B exceeds the {bud} B budget"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use mimose_models::builders::{bert_base, BertHead};
    use mimose_models::ModelInput;

    fn profile(seq: usize) -> ModelProfile {
        bert_base(BertHead::Classification { labels: 2 })
            .profile(&ModelInput::tokens(32, seq))
            .unwrap()
    }

    #[test]
    fn sane_plan_has_no_errors() {
        let p = profile(128);
        let n = p.blocks.len();
        let plan = CheckpointPlan::from_indices(n, &[1, 2, 3, 4, 5]).unwrap();
        let budget = peak_bytes(&p, &plan) + (1 << 20);
        let diags = lint_plan(&p, &plan, Some(budget), "test");
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn corrupted_plan_shape_is_an_error() {
        // A plan built for the wrong model size — the static analogue of an
        // out-of-range index surviving into execution.
        let p = profile(128);
        let plan = CheckpointPlan::all(p.blocks.len() + 3);
        let diags = lint_plan(&p, &plan, None, "test");
        assert!(
            diags.iter().any(|d| d.check == "plan-length-mismatch"),
            "{diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn over_budget_plan_is_an_error() {
        let p = profile(256);
        let n = p.blocks.len();
        let none = CheckpointPlan::none(n);
        let tight = peak_bytes(&p, &CheckpointPlan::all(n)) + (1 << 20);
        let diags = lint_plan(&p, &none, Some(tight), "test");
        assert!(
            diags.iter().any(|d| d.check == "plan-over-budget"),
            "{diags:?}"
        );
    }

    #[test]
    fn infeasible_budget_is_an_error() {
        let p = profile(256);
        let n = p.blocks.len();
        let diags = lint_plan(&p, &CheckpointPlan::all(n), Some(1 << 20), "test");
        assert!(
            diags.iter().any(|d| d.check == "budget-infeasible"),
            "{diags:?}"
        );
    }

    #[test]
    fn degenerate_and_useless_plans_are_warnings() {
        let p = profile(128);
        let n = p.blocks.len();
        let all = lint_plan(&p, &CheckpointPlan::all(n), None, "test");
        assert!(all.iter().any(|d| d.check == "plan-all-checkpointed"));
        assert!(!has_errors(&all), "{all:?}");
        let last = lint_plan(
            &p,
            &CheckpointPlan::from_indices(n, &[n - 1]).unwrap(),
            None,
            "test",
        );
        assert!(last.iter().any(|d| d.check == "useless-last-checkpoint"));
    }

    #[test]
    fn fine_plan_lints() {
        let p = profile(128);
        let n = p.blocks.len();
        let mut fine = FinePlan::none(n);
        fine.dropped_bytes[1] = p.blocks[1].act_bytes * 2; // over-drop
        fine.recompute_flops[2] = f64::NAN;
        let diags = lint_fine_plan(&p, &fine, None, "test");
        assert!(
            diags
                .iter()
                .any(|d| d.check == "fine-drop-exceeds-activations"),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.check == "invalid-recompute-flops"),
            "{diags:?}"
        );
    }

    #[test]
    fn hybrid_plan_lints() {
        let p = profile(128);
        let n = p.blocks.len();
        let ok = lint_hybrid_plan(&p, &HybridPlan::keep_all(n), Some(usize::MAX), "test");
        assert!(!has_errors(&ok), "{ok:?}");
        let short = HybridPlan::keep_all(n - 1);
        let diags = lint_hybrid_plan(&p, &short, None, "test");
        assert!(has_errors(&diags), "{diags:?}");
    }
}
