//! The static lint family: `mimose-verify` sanitizer findings reported
//! through the diagnostic machinery.
//!
//! `mimose-verify` sits below this crate in the dependency graph (so the
//! plan cache and admission controller can hold certificates without a
//! cycle) and reports raw [`Violation`]s; this module converts them into
//! [`Diagnostic`]s so static findings flow through the same JSON pipeline,
//! severity accounting and gating as every dynamic audit pass.

use crate::diag::Diagnostic;
use mimose_models::{ModelInput, OptimizedGraph};
use mimose_planner::CheckpointPlan;
use mimose_verify::{lint_graph, sanitize, Schedule, Severity, Violation};

fn to_diagnostic(v: &Violation, subject: &str) -> Diagnostic {
    let message = match v.op_index {
        Some(i) => format!("op {i}: {}", v.message),
        None => v.message.clone(),
    };
    match v.severity {
        Severity::Error => Diagnostic::error(v.check, subject, message),
        Severity::Warning => Diagnostic::warning(v.check, subject, message),
    }
}

/// Run the symbolic schedule sanitizer and report its findings as
/// diagnostics: use-after-free, use-after-evict, double-free,
/// recompute-without-live-dependency and dependency-order violations as
/// errors; leaks and incomplete backward sweeps as warnings.
#[must_use]
pub fn lint_schedule(schedule: &Schedule, subject: &str) -> Vec<Diagnostic> {
    sanitize(schedule)
        .iter()
        .map(|v| to_diagnostic(v, subject))
        .collect()
}

/// [`lint_schedule`] over the canonical lowering of a checkpoint plan — the
/// pre-execution sanity gate for planner output.
#[must_use]
pub fn lint_plan_schedule(plan: &CheckpointPlan, subject: &str) -> Vec<Diagnostic> {
    lint_schedule(&Schedule::from_plan(plan), subject)
}

/// Run `mimose-verify`'s graph-equivalence lint over an optimized graph
/// and report its findings as diagnostics: changed FLOPs, grown
/// activation footprints, mutated block boundaries or dataflow, and
/// unsound stash elisions all surface as errors through the same JSON
/// pipeline as every other audit pass.
#[must_use]
pub fn lint_optimized_graph(
    opt: &OptimizedGraph,
    input: &ModelInput,
    subject: &str,
) -> Vec<Diagnostic> {
    lint_graph(opt, input)
        .iter()
        .map(|v| to_diagnostic(v, subject))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use mimose_verify::SchedOp;

    #[test]
    fn canonical_plan_lowering_lints_clean() {
        let plan = CheckpointPlan::from_indices(6, &[1, 3, 5]).unwrap();
        let diags = lint_plan_schedule(&plan, "test-plan");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn optimized_graph_lints_clean_through_diag_machinery() {
        use mimose_models::builders::{bert_base, BertHead};
        let opt = bert_base(BertHead::Classification { labels: 2 }).optimize();
        let input = ModelInput::tokens(8, 128);
        let diags = lint_optimized_graph(&opt, &input, "bert-base");
        assert!(diags.is_empty(), "{diags:?}");
        // The pipeline must actually have shrunk something for this test
        // to be meaningful evidence.
        let raw = opt.raw_profile(&input).unwrap().total_act_bytes();
        let shrunk = opt.profile(&input).unwrap().total_act_bytes();
        assert!(shrunk < raw);
    }

    #[test]
    fn mutated_schedule_reports_through_diag_machinery() {
        let plan = CheckpointPlan::from_indices(4, &[2]).unwrap();
        let mut s = Schedule::from_plan(&plan);
        let i = s
            .position(|op| matches!(op, SchedOp::Recompute { block: 2 }))
            .unwrap();
        s.remove_op(i);
        let diags = lint_schedule(&s, "mutant");
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.check == "use-after-evict"));
        let json = diags[0].to_json();
        assert!(json.contains("\"check\":"), "{json}");
        assert!(json.contains("mutant"), "{json}");
    }
}
