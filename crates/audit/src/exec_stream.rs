//! Auditing the executor's typed [`ExecEvent`] stream.
//!
//! Both engines can record every allocation, free, clock charge, plan
//! change and recovery action as one append-only event stream
//! (`run_block_iteration_recorded` / `run_dtr_iteration_recorded` in
//! `mimose-exec`). This pass is the single entry point for auditing such a
//! stream: it projects the allocator-level events down to the arena
//! [`TraceEvent`](mimose_simgpu::TraceEvent) log and replays them through
//! [`audit_trace`]'s shadow allocator, then extracts the embedded
//! [`RecoveryEvent`](mimose_planner::RecoveryEvent)s and runs the ladder
//! lint over them — so a recorded run gets the exact same scrutiny a
//! hand-collected arena trace plus recovery chain would, from one artifact.

use crate::diag::Diagnostic;
use crate::recovery::lint_recovery_trace;
use crate::trace::audit_trace;
use mimose_runtime::ExecEvent;
use mimose_simgpu::ArenaStats;

/// Ladder bounds used for the embedded recovery lint; these mirror the
/// executor's default `RecoveryConfig` (`max_restarts` / `max_inline_events`).
const DEFAULT_MAX_RESTARTS: usize = 2;
const DEFAULT_MAX_INLINE_PER_ATTEMPT: usize = 64;

/// Audit a recorded execution-event stream: shadow-replay its allocator
/// projection against an arena of `capacity` bytes (cross-checking `stats`
/// when given), and lint any recovery events embedded in the stream under
/// the executor's default ladder bounds.
pub fn audit_exec_events(
    capacity: usize,
    events: &[ExecEvent],
    stats: Option<&ArenaStats>,
) -> Vec<Diagnostic> {
    let trace: Vec<_> = events
        .iter()
        .filter_map(ExecEvent::to_trace_event)
        .collect();
    let mut diags = audit_trace(capacity, &trace, stats);
    let recovery: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ExecEvent::Recovery(r) => Some(r.clone()),
            _ => None,
        })
        .collect();
    if !recovery.is_empty() {
        diags.extend(lint_recovery_trace(
            &recovery,
            DEFAULT_MAX_RESTARTS,
            DEFAULT_MAX_INLINE_PER_ATTEMPT,
        ));
    }
    diags
}
