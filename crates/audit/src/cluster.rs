//! Fleet-level lint: independent re-derivation of a
//! [`ClusterReport`](mimose_cluster::ClusterReport)'s rollup numbers from
//! the per-job evidence the scheduler kept, plus structural invariants of
//! the dispatch sequence.
//!
//! The scheduler folds per-iteration reports into per-job summaries and
//! those into the fleet rollup; this pass refuses to trust any of it. It
//! re-folds the iteration reports, re-sums the device counters, replays
//! recorded event streams through [`fold_events`], and cross-checks every
//! number the report claims.
//!
//! The fleet-failure checks prove the failure protocol's central promise:
//! a lost device's jobs are never silently dropped. Every checkpointed
//! job must carry a balanced event chain (checkpoint → requeue → backoff,
//! then migrate or an explicit shed/fail), every rollup counter must
//! re-derive from that chain, every migration must land on a device the
//! embedded fault plan says was reachable, and retries must stay within
//! the configured budget.
//!
//! Serving-mode (event-driven) reports get two further treatments: every
//! SLO tail percentile (p50/p95/p99 queue wait and iteration latency),
//! the goodput and the rejection/shed rates are re-folded from the job
//! rows through an independent nearest-rank implementation; and the
//! timestamped event chain must be self-consistent — arrival echoes,
//! queue waits as `dispatch.at_ns - arrive.at_ns`, completion instants,
//! a terminal event for every job, and a makespan equal to the last
//! event's timestamp.

use crate::diag::Diagnostic;
use mimose_cluster::{ClusterOutcome, FleetEventKind, JobOutcome};
use mimose_runtime::{fold_events, RunSummary};

/// Independent nearest-rank percentile: the smallest sample element with
/// at least `p`% of the sample at or below it (0 for an empty sample).
/// Deliberately re-implemented here rather than shared with the cluster
/// crate, so a bug in the report's fold cannot hide from the lint.
fn nearest_rank(sample: &[u64], p: f64) -> u64 {
    let mut xs = sample.to_vec();
    xs.sort_unstable();
    if xs.is_empty() {
        return 0;
    }
    let need = ((p / 100.0 * xs.len() as f64).ceil()).max(1.0) as usize;
    xs[need - 1]
}

/// Audit a finished cluster run. Returns one diagnostic per violated
/// invariant; an empty vector means the rollup is exactly reproducible
/// from the evidence.
#[must_use]
pub fn lint_cluster(outcome: &ClusterOutcome) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let report = &outcome.report;
    let details = &outcome.details;

    if report.jobs.len() != details.len() {
        diags.push(Diagnostic::error(
            "cluster-job-rows",
            "report",
            format!(
                "report has {} job rows but {} job details",
                report.jobs.len(),
                details.len()
            ),
        ));
        return diags; // every per-job check below would misalign
    }

    // --- Fleet event chain: tally per-job protocol steps once, for the
    // per-job and rollup cross-checks below. ---
    let n_jobs = report.jobs.len();
    let mut checkpoints = vec![0usize; n_jobs];
    let mut requeues = vec![0usize; n_jobs];
    let mut backoffs = vec![0usize; n_jobs];
    let mut migrates = vec![0usize; n_jobs];
    let mut sheds = vec![0usize; n_jobs];
    let mut event_cost = vec![0u64; n_jobs];
    let mut lost_by_event = vec![false; report.devices.len()];
    let event_mode = report.mode == "event-driven";
    let mut last_round = 0usize;
    let mut last_at_ns = 0u64;
    for e in &report.events {
        if e.round < last_round {
            diags.push(Diagnostic::error(
                "cluster-event-order",
                "fleet",
                format!(
                    "{} event in round {} after an event in round {last_round}",
                    e.kind.tag(),
                    e.round
                ),
            ));
        }
        last_round = e.round;
        if e.at_ns < last_at_ns {
            diags.push(Diagnostic::error(
                "cluster-event-time",
                "fleet",
                format!(
                    "{} event at {} ns after an event at {last_at_ns} ns",
                    e.kind.tag(),
                    e.at_ns
                ),
            ));
        }
        last_at_ns = e.at_ns;
        let Some(j) = e.kind.job() else {
            if let FleetEventKind::DeviceDown {
                device,
                until_round: None,
            } = &e.kind
            {
                if *device < lost_by_event.len() {
                    lost_by_event[*device] = true;
                }
            }
            continue;
        };
        if j >= n_jobs {
            diags.push(Diagnostic::error(
                "cluster-event-job",
                "fleet",
                format!("{} event names job #{j}, out of range", e.kind.tag()),
            ));
            continue;
        }
        event_cost[j] += e.cost_ns;
        match &e.kind {
            FleetEventKind::Checkpoint { .. } => checkpoints[j] += 1,
            FleetEventKind::Requeue { .. } => requeues[j] += 1,
            FleetEventKind::Backoff { until_round, .. } => {
                backoffs[j] += 1;
                // In event mode the window is a virtual-ns instant and the
                // epoch is not a clock; compare against the right axis.
                let window_open = if event_mode {
                    *until_round as u64 > e.at_ns
                } else {
                    *until_round > e.round
                };
                if !window_open {
                    diags.push(Diagnostic::error(
                        "cluster-backoff-window",
                        report.jobs[j].name.clone(),
                        format!("backoff until {until_round} is not after the event's instant"),
                    ));
                }
            }
            FleetEventKind::Migrate { to, .. } => {
                migrates[j] += 1;
                let target_lost = if event_mode {
                    report.fault_plan.is_lost_at_ns(*to, e.at_ns)
                } else {
                    report.fault_plan.is_lost(*to, e.round)
                };
                if target_lost {
                    diags.push(Diagnostic::error(
                        "cluster-migrate-target",
                        report.jobs[j].name.clone(),
                        format!(
                            "migrated onto device {to} at {} ns (round {}), but the \
                             fault plan says that device was already lost",
                            e.at_ns, e.round
                        ),
                    ));
                }
            }
            FleetEventKind::Shed { .. } => sheds[j] += 1,
            _ => {}
        }
    }

    // --- Per-job: re-fold the iteration reports and compare. ---
    let mut first_dispatches = 0usize;
    for (j, (row, detail)) in report.jobs.iter().zip(details).enumerate() {
        let subject = row.name.clone();
        if detail.dispatch_seq.is_some() {
            first_dispatches += 1;
        }
        // A job with no device must have been settled, never starved.
        if row.device.is_none() && row.outcome.finished() {
            diags.push(Diagnostic::error(
                "cluster-starvation",
                subject.clone(),
                "job marked finished but never dispatched to a device",
            ));
        }
        // Failure-protocol chain balance and the no-silent-drop rule.
        if checkpoints[j] != requeues[j] || requeues[j] != backoffs[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-chain",
                subject.clone(),
                format!(
                    "unbalanced protocol chain: {} checkpoints, {} requeues, {} backoffs",
                    checkpoints[j], requeues[j], backoffs[j]
                ),
            ));
        }
        if migrates[j] > requeues[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-chain",
                subject.clone(),
                format!(
                    "{} migrations exceed {} requeues (migrated without a checkpoint)",
                    migrates[j], requeues[j]
                ),
            ));
        }
        if checkpoints[j] > 0
            && !matches!(
                row.outcome,
                JobOutcome::Migrated | JobOutcome::Shed(_) | JobOutcome::Failed(_)
            )
        {
            diags.push(Diagnostic::error(
                "cluster-displaced-outcome",
                subject.clone(),
                format!(
                    "job was checkpointed off a device but its outcome is {:?} — \
                     displaced work must end migrated, shed, or failed",
                    row.outcome.tag()
                ),
            ));
        }
        if (sheds[j] > 0) != matches!(row.outcome, JobOutcome::Shed(_)) || sheds[j] > 1 {
            diags.push(Diagnostic::error(
                "cluster-shed-outcome",
                subject.clone(),
                format!(
                    "{} shed events for outcome {:?}",
                    sheds[j],
                    row.outcome.tag()
                ),
            ));
        }
        if row.outcome == JobOutcome::Migrated && migrates[j] == 0 {
            diags.push(Diagnostic::error(
                "cluster-migrated-evidence",
                subject.clone(),
                "outcome says migrated but no migrate event exists",
            ));
        }
        if row.migrations != migrates[j] {
            diags.push(Diagnostic::error(
                "cluster-migration-count",
                subject.clone(),
                format!(
                    "row claims {} migrations, events show {}",
                    row.migrations, migrates[j]
                ),
            ));
        }
        if row.retries != requeues[j] {
            diags.push(Diagnostic::error(
                "cluster-retry-count",
                subject.clone(),
                format!(
                    "row claims {} retries, events show {}",
                    row.retries, requeues[j]
                ),
            ));
        }
        if row.retries > report.fleet.max_retries {
            diags.push(Diagnostic::error(
                "cluster-retry-budget",
                subject.clone(),
                format!(
                    "{} retries exceed the configured budget {}",
                    row.retries, report.fleet.max_retries
                ),
            ));
        }
        if row.fleet_overhead_ns != event_cost[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-overhead",
                subject.clone(),
                format!(
                    "row attributes {} ns of fleet overhead, events sum to {} ns",
                    row.fleet_overhead_ns, event_cost[j]
                ),
            ));
        }
        // Placement segments must partition the job's execution.
        let seg_iters: usize = row.placements.iter().map(|p| p.iters).sum();
        let seg_busy: u64 = row.placements.iter().map(|p| p.busy_ns).sum();
        if seg_iters != row.iters || seg_busy != row.total_ns {
            diags.push(Diagnostic::error(
                "cluster-placement-sum",
                subject.clone(),
                format!(
                    "placements sum to {seg_iters} iters / {seg_busy} ns, \
                     row says {} iters / {} ns",
                    row.iters, row.total_ns
                ),
            ));
        }
        if let (Some(last), Some(dev)) = (row.placements.last(), row.device) {
            if last.device != dev {
                diags.push(Diagnostic::error(
                    "cluster-placement-device",
                    subject.clone(),
                    format!(
                        "last placement ran on device {}, row says device {dev}",
                        last.device
                    ),
                ));
            }
        }
        if row.device.is_some() && detail.dispatch_seq.is_none() {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                subject.clone(),
                "dispatched job carries no dispatch sequence number",
            ));
        }

        let mut refold = RunSummary::default();
        for r in &detail.reports {
            refold.absorb(r);
        }
        let s = &detail.summary;
        if (refold.iters, refold.total_ns, refold.max_peak_bytes)
            != (s.iters, s.total_ns, s.max_peak_bytes)
            || (
                refold.oom_iters,
                refold.recovered_iters,
                refold.recovery_events,
            ) != (s.oom_iters, s.recovered_iters, s.recovery_events)
            || refold.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-summary-refold",
                subject.clone(),
                format!(
                    "re-folding {} iteration reports disagrees with the session summary \
                     (refold {refold:?} vs summary {s:?})",
                    detail.reports.len()
                ),
            ));
        }
        if row.iters != s.iters
            || row.total_ns != s.total_ns
            || row.max_peak_bytes != s.max_peak_bytes
            || row.oom_iters != s.oom_iters
            || row.recovered_iters != s.recovered_iters
            || row.recovery_events != s.recovery_events
            || row.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-row-vs-summary",
                subject.clone(),
                "report row disagrees with the job's session summary",
            ));
        }
        if row.outcome == JobOutcome::Completed && row.iters == 0 {
            diags.push(Diagnostic::error(
                "cluster-empty-completion",
                subject.clone(),
                "job completed with zero iterations executed",
            ));
        }

        // Recorded event streams must reproduce the reported peaks and
        // stay within the arena each iteration actually ran under.
        if !detail.records.is_empty() {
            if detail.records.len() != detail.reports.len() {
                diags.push(Diagnostic::error(
                    "cluster-record-count",
                    subject.clone(),
                    format!(
                        "{} event records for {} iteration reports",
                        detail.records.len(),
                        detail.reports.len()
                    ),
                ));
            }
            for (rec, rep) in detail.records.iter().zip(&detail.reports) {
                let fold = fold_events(rec.capacity, &rec.events);
                if fold.peak_used != rep.peak_bytes {
                    diags.push(Diagnostic::error(
                        "cluster-fold-peak",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "event fold peak {} != reported peak {}",
                            fold.peak_used, rep.peak_bytes
                        ),
                    ));
                }
                if rep.peak_extent > rec.capacity {
                    diags.push(Diagnostic::error(
                        "cluster-extent-capacity",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "peak extent {} exceeds the iteration's arena capacity {}",
                            rep.peak_extent, rec.capacity
                        ),
                    ));
                }
            }
        }
    }

    // --- Devices: counters must re-derive from the jobs' placement
    // segments (a migrated job's iterations split across devices). ---
    for dev in &report.devices {
        let iters: usize = report
            .jobs
            .iter()
            .flat_map(|j| &j.placements)
            .filter(|p| p.device == dev.index)
            .map(|p| p.iters)
            .sum();
        if iters != dev.iters {
            diags.push(Diagnostic::error(
                "cluster-device-iters",
                format!("device {}", dev.index),
                format!(
                    "device counted {} iters, its placement segments sum to {iters}",
                    dev.iters
                ),
            ));
        }
        let busy: u64 = report
            .jobs
            .iter()
            .flat_map(|j| &j.placements)
            .filter(|p| p.device == dev.index)
            .map(|p| p.busy_ns)
            .sum();
        if busy != dev.busy_ns {
            diags.push(Diagnostic::error(
                "cluster-device-busy",
                format!("device {}", dev.index),
                format!(
                    "device busy {} ns, its placement segments sum to {busy} ns",
                    dev.busy_ns
                ),
            ));
        }
        if dev.lost != lost_by_event[dev.index] {
            diags.push(Diagnostic::error(
                "cluster-device-lost",
                format!("device {}", dev.index),
                format!(
                    "device lost flag {} disagrees with the event chain ({})",
                    dev.lost, lost_by_event[dev.index]
                ),
            ));
        }
    }

    // --- Fleet rollup: totals, makespan, utilization. In BSP mode the
    // makespan is the furthest any device ran; in event mode it is the
    // last instant anything happened — the maximum event timestamp. ---
    if event_mode {
        let max_at = report.events.iter().map(|e| e.at_ns).max().unwrap_or(0);
        if report.makespan_ns != max_at {
            diags.push(Diagnostic::error(
                "cluster-makespan",
                "report",
                format!(
                    "event-mode makespan {} != last event timestamp {max_at}",
                    report.makespan_ns
                ),
            ));
        }
    } else {
        let max_busy = report.devices.iter().map(|d| d.busy_ns).max().unwrap_or(0);
        if report.makespan_ns != max_busy {
            diags.push(Diagnostic::error(
                "cluster-makespan",
                "report",
                format!(
                    "makespan {} != max device busy {max_busy}",
                    report.makespan_ns
                ),
            ));
        }
    }
    let sum_busy: u64 = report.devices.iter().map(|d| d.busy_ns).sum();
    if report.busy_ns != sum_busy {
        diags.push(Diagnostic::error(
            "cluster-busy-sum",
            "report",
            format!("busy {} != device sum {sum_busy}", report.busy_ns),
        ));
    }
    if !(0.0..=100.0 + 1e-9).contains(&report.utilization_pct) {
        diags.push(Diagnostic::error(
            "cluster-utilization-bounds",
            "report",
            format!("utilization {} % out of [0, 100]", report.utilization_pct),
        ));
    }
    if report.makespan_ns > 0 {
        let expect =
            sum_busy as f64 / (report.makespan_ns as f64 * report.devices.len() as f64) * 100.0;
        if (expect - report.utilization_pct).abs() > 1e-6 {
            diags.push(Diagnostic::error(
                "cluster-utilization-value",
                "report",
                format!(
                    "utilization {} % does not re-derive ({expect} %)",
                    report.utilization_pct
                ),
            ));
        }
    }
    for (check, reported, derived) in [
        (
            "cluster-oom-total",
            report.oom_iters,
            report.jobs.iter().map(|j| j.oom_iters).sum::<usize>(),
        ),
        (
            "cluster-recovered-total",
            report.recovered_iters,
            report.jobs.iter().map(|j| j.recovered_iters).sum(),
        ),
        (
            "cluster-recovery-total",
            report.recovery_events,
            report.jobs.iter().map(|j| j.recovery_events).sum(),
        ),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "report",
                format!("rollup says {reported}, job rows sum to {derived}"),
            ));
        }
    }

    // --- Fleet rollup: every counter re-derives from the event chain. ---
    let total_migrates: usize = migrates.iter().sum();
    let total_cost: u64 = report.events.iter().map(|e| e.cost_ns).sum();
    let failed_rows = report
        .jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
        .count();
    for (check, reported, derived) in [
        (
            "cluster-fleet-checkpoints",
            report.fleet.checkpoints,
            checkpoints.iter().sum::<usize>(),
        ),
        (
            "cluster-fleet-migrations",
            report.fleet.migrations,
            total_migrates,
        ),
        (
            "cluster-fleet-shed",
            report.fleet.shed_jobs,
            sheds.iter().sum::<usize>(),
        ),
        (
            "cluster-fleet-failed",
            report.fleet.failed_jobs,
            failed_rows,
        ),
        (
            "cluster-fleet-lost",
            report.fleet.devices_lost,
            lost_by_event.iter().filter(|l| **l).count(),
        ),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "fleet",
                format!("rollup says {reported}, the event chain derives {derived}"),
            ));
        }
    }
    if report.fleet.overhead_ns != total_cost {
        diags.push(Diagnostic::error(
            "cluster-fleet-overhead",
            "fleet",
            format!(
                "rollup attributes {} ns of fleet overhead, events sum to {total_cost} ns",
                report.fleet.overhead_ns
            ),
        ));
    }

    // Admission bookkeeping: every dispatch — first placement or
    // migration — passed through the controller; every undispatched job
    // was rejected or failed.
    let adm = &report.admission;
    if adm.admitted + adm.demoted != first_dispatches + total_migrates {
        diags.push(Diagnostic::error(
            "cluster-admission-count",
            "report",
            format!(
                "{} admitted + {} demoted != {first_dispatches} first dispatches + \
                 {total_migrates} migrations",
                adm.admitted, adm.demoted
            ),
        ));
    }
    if adm.verified_admits > adm.admitted {
        diags.push(Diagnostic::error(
            "cluster-verified-admits",
            "report",
            format!(
                "{} statically verified admits exceed {} total admits",
                adm.verified_admits, adm.admitted
            ),
        ));
    }
    let rejected_rows = report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Rejected)
        .count();
    if adm.rejected != rejected_rows {
        diags.push(Diagnostic::error(
            "cluster-rejection-count",
            "report",
            format!(
                "admission counted {} rejections, {rejected_rows} job rows are rejected",
                adm.rejected
            ),
        ));
    }
    if adm.within_10pct > adm.predictions {
        diags.push(Diagnostic::error(
            "cluster-prediction-count",
            "report",
            format!(
                "{} accurate predictions out of {} scored",
                adm.within_10pct, adm.predictions
            ),
        ));
    }

    // --- SLO rollup: re-fold every tail percentile, the goodput and the
    // rates from the job rows through an independent nearest-rank
    // implementation. A quoted p99 must be exactly reproducible. ---
    let slo = &report.slo;
    let waits: Vec<u64> = report
        .jobs
        .iter()
        .filter(|j| j.device.is_some())
        .map(|j| j.queue_wait_ns)
        .collect();
    let latencies: Vec<u64> = details
        .iter()
        .flat_map(|d| d.reports.iter().map(|r| r.time.total_ns()))
        .collect();
    for (check, reported, sample, p) in [
        ("cluster-slo-wait-p50", slo.queue_wait_p50_ns, &waits, 50.0),
        ("cluster-slo-wait-p95", slo.queue_wait_p95_ns, &waits, 95.0),
        ("cluster-slo-wait-p99", slo.queue_wait_p99_ns, &waits, 99.0),
        (
            "cluster-slo-latency-p50",
            slo.iter_latency_p50_ns,
            &latencies,
            50.0,
        ),
        (
            "cluster-slo-latency-p95",
            slo.iter_latency_p95_ns,
            &latencies,
            95.0,
        ),
        (
            "cluster-slo-latency-p99",
            slo.iter_latency_p99_ns,
            &latencies,
            99.0,
        ),
    ] {
        let derived = nearest_rank(sample, p);
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "slo",
                format!("rollup quotes {reported} ns, the evidence re-folds to {derived} ns"),
            ));
        }
    }
    let goodput: usize = report
        .jobs
        .iter()
        .filter(|j| j.outcome.finished())
        .map(|j| j.iters)
        .sum();
    if slo.goodput_iters != goodput {
        diags.push(Diagnostic::error(
            "cluster-slo-goodput",
            "slo",
            format!(
                "rollup claims {} goodput iters, finished rows sum to {goodput}",
                slo.goodput_iters
            ),
        ));
    }
    let goodput_rate = if report.makespan_ns > 0 {
        goodput as f64 / (report.makespan_ns as f64 / 1e9)
    } else {
        0.0
    };
    if (slo.goodput_iters_per_s - goodput_rate).abs() > 1e-6 * goodput_rate.max(1.0) {
        diags.push(Diagnostic::error(
            "cluster-slo-goodput-rate",
            "slo",
            format!(
                "goodput rate {} iters/s does not re-derive ({goodput_rate})",
                slo.goodput_iters_per_s
            ),
        ));
    }
    let shed_rows = report
        .jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Shed(_)))
        .count();
    for (check, reported, derived) in [
        ("cluster-slo-rejected", slo.rejected_jobs, rejected_rows),
        ("cluster-slo-shed", slo.shed_jobs, shed_rows),
        ("cluster-slo-failed", slo.failed_jobs, failed_rows),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "slo",
                format!("rollup counts {reported}, job rows show {derived}"),
            ));
        }
    }
    let n = report.jobs.len().max(1) as f64;
    for (check, reported, count) in [
        (
            "cluster-slo-rejection-rate",
            slo.rejection_rate_pct,
            rejected_rows,
        ),
        ("cluster-slo-shed-rate", slo.shed_rate_pct, shed_rows),
    ] {
        let derived = if report.jobs.is_empty() {
            0.0
        } else {
            count as f64 / n * 100.0
        };
        if (reported - derived).abs() > 1e-9 {
            diags.push(Diagnostic::error(
                check,
                "slo",
                format!("rate {reported} % does not re-derive ({derived} %)"),
            ));
        }
    }

    // --- Event-mode chain consistency: arrival echoes, queue waits,
    // completion instants and terminal settlement all re-derive from the
    // timestamped chain. ---
    if event_mode {
        for (j, row) in report.jobs.iter().enumerate() {
            let subject = row.name.clone();
            let arrive = report
                .events
                .iter()
                .find(|e| matches!(&e.kind, FleetEventKind::Arrive { job } if *job == j));
            let Some(arrive) = arrive else {
                diags.push(Diagnostic::error(
                    "cluster-arrival-missing",
                    subject,
                    "event-mode job has no arrive event on the chain",
                ));
                continue;
            };
            if arrive.at_ns != row.arrival_ns {
                diags.push(Diagnostic::error(
                    "cluster-arrival-echo",
                    subject.clone(),
                    format!(
                        "row claims arrival at {} ns, the chain says {} ns",
                        row.arrival_ns, arrive.at_ns
                    ),
                ));
            }
            let dispatch = report
                .events
                .iter()
                .find(|e| matches!(&e.kind, FleetEventKind::Dispatch { job, .. } if *job == j));
            if let Some(dispatch) = dispatch {
                if dispatch.at_ns != arrive.at_ns + row.queue_wait_ns {
                    diags.push(Diagnostic::error(
                        "cluster-queue-wait-refold",
                        subject.clone(),
                        format!(
                            "row claims a {} ns queue wait, the chain derives {} ns",
                            row.queue_wait_ns,
                            dispatch.at_ns.saturating_sub(arrive.at_ns)
                        ),
                    ));
                }
            }
            let complete = report
                .events
                .iter()
                .find(|e| matches!(&e.kind, FleetEventKind::Complete { job, .. } if *job == j));
            if let Some(complete) = complete {
                if Some(complete.at_ns) != row.finish_ns {
                    diags.push(Diagnostic::error(
                        "cluster-finish-echo",
                        subject.clone(),
                        format!(
                            "row claims finish at {:?} ns, the chain says {} ns",
                            row.finish_ns, complete.at_ns
                        ),
                    ));
                }
            }
            let has_terminal = report.events.iter().any(|e| match &e.kind {
                FleetEventKind::Complete { job, .. }
                | FleetEventKind::Reject { job, .. }
                | FleetEventKind::Shed { job, .. }
                | FleetEventKind::Fail { job, .. } => *job == j,
                _ => false,
            });
            if !has_terminal {
                diags.push(Diagnostic::error(
                    "cluster-terminal-event",
                    subject,
                    format!(
                        "job settled as {:?} but carries no terminal event on the chain",
                        row.outcome.tag()
                    ),
                ));
            }
        }
    }

    // --- Dispatch-sequence structure: the union of first dispatches and
    // migration dispatches must be unique, dense and round-monotone; and
    // under FIFO, same-round first dispatches onto equal-capacity devices
    // must honor submission order. ---
    let mut seq: Vec<(usize, usize, usize)> = details // (seq, round, submit idx)
        .iter()
        .enumerate()
        .filter_map(|(j, d)| Some((d.dispatch_seq?, d.dispatch_round?, j)))
        .collect();
    seq.sort_unstable();
    let mut all_dispatches = seq.clone();
    for e in &report.events {
        if let FleetEventKind::Migrate { job, seq: s, .. } = &e.kind {
            all_dispatches.push((*s, e.round, *job));
        }
    }
    all_dispatches.sort_unstable();
    for (k, (s, round, _)) in all_dispatches.iter().enumerate() {
        if *s != k {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                "schedule",
                format!("dispatch sequence is not dense: position {k} holds seq {s}"),
            ));
            break;
        }
        if k > 0 && *round < all_dispatches[k - 1].1 {
            diags.push(Diagnostic::error(
                "cluster-dispatch-rounds",
                "schedule",
                format!("seq {s} dispatched in round {round}, before its predecessor"),
            ));
        }
    }
    if report.schedule == "fifo" {
        for w in seq.windows(2) {
            let ((_, ra, ja), (_, rb, jb)) = (w[0], w[1]);
            let cap = |j: usize| {
                report.jobs[j]
                    .device
                    .map(|d| report.devices[d].capacity_bytes)
            };
            if ra == rb && cap(ja) == cap(jb) && ja > jb {
                diags.push(Diagnostic::error(
                    "cluster-fifo-order",
                    "schedule",
                    format!(
                        "fifo dispatched job #{ja} before job #{jb} in round {ra} \
                         on equal-capacity devices"
                    ),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_cluster::{ArrivalProcess, Cluster, DevicePool, Mode, SchedulePolicy, Workload};

    #[test]
    fn clean_run_lints_clean() {
        for schedule in [
            SchedulePolicy::Fifo,
            SchedulePolicy::ShortestPredicted,
            SchedulePolicy::BestFitMemory,
        ] {
            let outcome = Cluster::builder()
                .devices(DevicePool::v100(2))
                .workload(Workload::mixed(2))
                .schedule(schedule)
                .record(true)
                .run()
                .expect("canonical workload runs");
            let diags = lint_cluster(&outcome);
            assert!(
                diags.is_empty(),
                "{}: {:?}",
                schedule.name(),
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn corrupted_rollup_is_caught() {
        let mut outcome = Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(2))
            .record(true)
            .run()
            .expect("canonical workload runs");
        outcome.report.makespan_ns += 1;
        outcome.report.jobs[0].oom_iters += 1;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-makespan"), "{checks:?}");
        assert!(checks.contains(&"cluster-row-vs-summary"), "{checks:?}");
        assert!(checks.contains(&"cluster-oom-total"), "{checks:?}");
    }

    fn lossy_outcome() -> mimose_cluster::ClusterOutcome {
        use mimose_chaos::{DeviceFault, FleetFaultPlan};
        let faults =
            FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
        Cluster::builder()
            .devices(DevicePool::v100(4))
            .workload(Workload::mixed(4))
            .faults(faults)
            .record(true)
            .run()
            .expect("faulted workload runs")
    }

    fn serving_outcome() -> mimose_cluster::ClusterOutcome {
        use mimose_chaos::{FleetFaultPlan, TimedDeviceFault};
        let faults = FleetFaultPlan::none(0).with_timed_fault(
            1,
            TimedDeviceFault::Down {
                at_ns: 600_000,
                duration_ns: 1_500_000,
            },
        );
        Cluster::builder()
            .devices(DevicePool::v100(2))
            .workload(Workload::mixed(2))
            .mode(Mode::EventDriven)
            .arrivals(ArrivalProcess::poisson(400_000, 17))
            .faults(faults)
            .record(true)
            .run()
            .expect("serving run")
    }

    #[test]
    fn event_mode_run_lints_clean() {
        let outcome = serving_outcome();
        assert_eq!(outcome.report.mode, "event-driven");
        let diags = lint_cluster(&outcome);
        assert!(
            diags.is_empty(),
            "{:?}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_slo_tails_are_caught() {
        let mut outcome = serving_outcome();
        outcome.report.slo.queue_wait_p99_ns += 1;
        outcome.report.slo.iter_latency_p50_ns += 1;
        outcome.report.slo.goodput_iters += 1;
        outcome.report.slo.shed_rate_pct += 0.5;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-slo-wait-p99"), "{checks:?}");
        assert!(checks.contains(&"cluster-slo-latency-p50"), "{checks:?}");
        assert!(checks.contains(&"cluster-slo-goodput"), "{checks:?}");
        assert!(checks.contains(&"cluster-slo-shed-rate"), "{checks:?}");
    }

    #[test]
    fn corrupted_event_chain_is_caught() {
        let mut outcome = serving_outcome();
        let dispatched = outcome
            .report
            .jobs
            .iter()
            .position(|j| j.device.is_some() && j.queue_wait_ns > 0)
            .unwrap_or(0);
        outcome.report.jobs[dispatched].queue_wait_ns += 1;
        outcome.report.jobs[dispatched].arrival_ns += 1;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-arrival-echo"), "{checks:?}");
        assert!(checks.contains(&"cluster-queue-wait-refold"), "{checks:?}");
    }

    #[test]
    fn device_loss_run_lints_clean() {
        let outcome = lossy_outcome();
        // The scenario actually exercised the failure protocol.
        assert!(outcome.report.fleet.migrations >= 1);
        assert_eq!(outcome.report.fleet.devices_lost, 1);
        let diags = lint_cluster(&outcome);
        assert!(
            diags.is_empty(),
            "{:?}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_fleet_accounting_is_caught() {
        let mut outcome = lossy_outcome();
        let moved = outcome
            .report
            .jobs
            .iter()
            .position(|j| j.migrations > 0)
            .expect("scenario migrates a job");
        outcome.report.fleet.migrations += 1;
        outcome.report.jobs[moved].retries += 1;
        outcome.report.jobs[moved].fleet_overhead_ns += 1;
        outcome.report.devices[1].lost = false;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-fleet-migrations"), "{checks:?}");
        assert!(checks.contains(&"cluster-retry-count"), "{checks:?}");
        assert!(checks.contains(&"cluster-fleet-overhead"), "{checks:?}");
        assert!(checks.contains(&"cluster-device-lost"), "{checks:?}");
    }

    #[test]
    fn silently_dropped_job_is_caught() {
        let mut outcome = lossy_outcome();
        // Forge the cover-up: pretend the displaced job plain-completed and
        // erase its migration from the rollup and the row.
        let moved = outcome
            .report
            .jobs
            .iter()
            .position(|j| j.migrations > 0)
            .expect("scenario migrates a job");
        outcome.report.jobs[moved].outcome = JobOutcome::Completed;
        outcome.report.jobs[moved].migrations = 0;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-displaced-outcome"), "{checks:?}");
        assert!(checks.contains(&"cluster-migration-count"), "{checks:?}");
    }
}
