//! Fleet-level lint: independent re-derivation of a
//! [`ClusterReport`](mimose_cluster::ClusterReport)'s rollup numbers from
//! the per-job evidence the scheduler kept, plus structural invariants of
//! the dispatch sequence.
//!
//! The scheduler folds per-iteration reports into per-job summaries and
//! those into the fleet rollup; this pass refuses to trust any of it. It
//! re-folds the iteration reports, re-sums the device counters, replays
//! recorded event streams through [`fold_events`], and cross-checks every
//! number the report claims.

use crate::diag::Diagnostic;
use mimose_cluster::{ClusterOutcome, JobOutcome};
use mimose_runtime::{fold_events, RunSummary};

/// Audit a finished cluster run. Returns one diagnostic per violated
/// invariant; an empty vector means the rollup is exactly reproducible
/// from the evidence.
#[must_use]
pub fn lint_cluster(outcome: &ClusterOutcome) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let report = &outcome.report;
    let details = &outcome.details;

    if report.jobs.len() != details.len() {
        diags.push(Diagnostic::error(
            "cluster-job-rows",
            "report",
            format!(
                "report has {} job rows but {} job details",
                report.jobs.len(),
                details.len()
            ),
        ));
        return diags; // every per-job check below would misalign
    }

    // --- Per-job: re-fold the iteration reports and compare. ---
    let mut dispatched = 0usize;
    for (row, detail) in report.jobs.iter().zip(details) {
        let subject = row.name.clone();
        if row.device.is_some() {
            dispatched += 1;
        }
        // A job with no device must have been settled, never starved.
        if row.device.is_none() && row.outcome == JobOutcome::Completed {
            diags.push(Diagnostic::error(
                "cluster-starvation",
                subject.clone(),
                "job marked completed but never dispatched to a device",
            ));
        }
        if row.device.is_some() && detail.dispatch_seq.is_none() {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                subject.clone(),
                "dispatched job carries no dispatch sequence number",
            ));
        }

        let mut refold = RunSummary::default();
        for r in &detail.reports {
            refold.absorb(r);
        }
        let s = &detail.summary;
        if (refold.iters, refold.total_ns, refold.max_peak_bytes)
            != (s.iters, s.total_ns, s.max_peak_bytes)
            || (
                refold.oom_iters,
                refold.recovered_iters,
                refold.recovery_events,
            ) != (s.oom_iters, s.recovered_iters, s.recovery_events)
            || refold.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-summary-refold",
                subject.clone(),
                format!(
                    "re-folding {} iteration reports disagrees with the session summary \
                     (refold {refold:?} vs summary {s:?})",
                    detail.reports.len()
                ),
            ));
        }
        if row.iters != s.iters
            || row.total_ns != s.total_ns
            || row.max_peak_bytes != s.max_peak_bytes
            || row.oom_iters != s.oom_iters
            || row.recovered_iters != s.recovered_iters
            || row.recovery_events != s.recovery_events
            || row.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-row-vs-summary",
                subject.clone(),
                "report row disagrees with the job's session summary",
            ));
        }
        if row.outcome == JobOutcome::Completed && row.iters == 0 {
            diags.push(Diagnostic::error(
                "cluster-empty-completion",
                subject.clone(),
                "job completed with zero iterations executed",
            ));
        }

        // Recorded event streams must reproduce the reported peaks and
        // stay within the arena each iteration actually ran under.
        if !detail.records.is_empty() {
            if detail.records.len() != detail.reports.len() {
                diags.push(Diagnostic::error(
                    "cluster-record-count",
                    subject.clone(),
                    format!(
                        "{} event records for {} iteration reports",
                        detail.records.len(),
                        detail.reports.len()
                    ),
                ));
            }
            for (rec, rep) in detail.records.iter().zip(&detail.reports) {
                let fold = fold_events(rec.capacity, &rec.events);
                if fold.peak_used != rep.peak_bytes {
                    diags.push(Diagnostic::error(
                        "cluster-fold-peak",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "event fold peak {} != reported peak {}",
                            fold.peak_used, rep.peak_bytes
                        ),
                    ));
                }
                if rep.peak_extent > rec.capacity {
                    diags.push(Diagnostic::error(
                        "cluster-extent-capacity",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "peak extent {} exceeds the iteration's arena capacity {}",
                            rep.peak_extent, rec.capacity
                        ),
                    ));
                }
            }
        }
    }

    // --- Devices: counters must re-derive from the job rows. ---
    for dev in &report.devices {
        let iters: usize = report
            .jobs
            .iter()
            .filter(|j| j.device == Some(dev.index))
            .map(|j| j.iters)
            .sum();
        if iters != dev.iters {
            diags.push(Diagnostic::error(
                "cluster-device-iters",
                format!("device {}", dev.index),
                format!(
                    "device counted {} iters, its jobs sum to {iters}",
                    dev.iters
                ),
            ));
        }
        let busy: u64 = report
            .jobs
            .iter()
            .filter(|j| j.device == Some(dev.index))
            .map(|j| j.total_ns)
            .sum();
        if busy != dev.busy_ns {
            diags.push(Diagnostic::error(
                "cluster-device-busy",
                format!("device {}", dev.index),
                format!("device busy {} ns, its jobs sum to {busy} ns", dev.busy_ns),
            ));
        }
    }

    // --- Fleet rollup: totals, makespan, utilization. ---
    let max_busy = report.devices.iter().map(|d| d.busy_ns).max().unwrap_or(0);
    if report.makespan_ns != max_busy {
        diags.push(Diagnostic::error(
            "cluster-makespan",
            "report",
            format!(
                "makespan {} != max device busy {max_busy}",
                report.makespan_ns
            ),
        ));
    }
    let sum_busy: u64 = report.devices.iter().map(|d| d.busy_ns).sum();
    if report.busy_ns != sum_busy {
        diags.push(Diagnostic::error(
            "cluster-busy-sum",
            "report",
            format!("busy {} != device sum {sum_busy}", report.busy_ns),
        ));
    }
    if !(0.0..=100.0 + 1e-9).contains(&report.utilization_pct) {
        diags.push(Diagnostic::error(
            "cluster-utilization-bounds",
            "report",
            format!("utilization {} % out of [0, 100]", report.utilization_pct),
        ));
    }
    if report.makespan_ns > 0 {
        let expect =
            sum_busy as f64 / (report.makespan_ns as f64 * report.devices.len() as f64) * 100.0;
        if (expect - report.utilization_pct).abs() > 1e-6 {
            diags.push(Diagnostic::error(
                "cluster-utilization-value",
                "report",
                format!(
                    "utilization {} % does not re-derive ({expect} %)",
                    report.utilization_pct
                ),
            ));
        }
    }
    for (check, reported, derived) in [
        (
            "cluster-oom-total",
            report.oom_iters,
            report.jobs.iter().map(|j| j.oom_iters).sum::<usize>(),
        ),
        (
            "cluster-recovered-total",
            report.recovered_iters,
            report.jobs.iter().map(|j| j.recovered_iters).sum(),
        ),
        (
            "cluster-recovery-total",
            report.recovery_events,
            report.jobs.iter().map(|j| j.recovery_events).sum(),
        ),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "report",
                format!("rollup says {reported}, job rows sum to {derived}"),
            ));
        }
    }

    // Admission bookkeeping: every dispatched job was admitted or demoted,
    // every undispatched one rejected or failed.
    let adm = &report.admission;
    if adm.admitted + adm.demoted != dispatched {
        diags.push(Diagnostic::error(
            "cluster-admission-count",
            "report",
            format!(
                "{} admitted + {} demoted != {dispatched} dispatched jobs",
                adm.admitted, adm.demoted
            ),
        ));
    }
    if adm.verified_admits > adm.admitted {
        diags.push(Diagnostic::error(
            "cluster-verified-admits",
            "report",
            format!(
                "{} statically verified admits exceed {} total admits",
                adm.verified_admits, adm.admitted
            ),
        ));
    }
    let rejected_rows = report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Rejected)
        .count();
    if adm.rejected != rejected_rows {
        diags.push(Diagnostic::error(
            "cluster-rejection-count",
            "report",
            format!(
                "admission counted {} rejections, {rejected_rows} job rows are rejected",
                adm.rejected
            ),
        ));
    }
    if adm.within_10pct > adm.predictions {
        diags.push(Diagnostic::error(
            "cluster-prediction-count",
            "report",
            format!(
                "{} accurate predictions out of {} scored",
                adm.within_10pct, adm.predictions
            ),
        ));
    }

    // --- Dispatch-sequence structure: unique, dense, round-monotone; and
    // under FIFO, same-round dispatches onto equal-capacity devices must
    // honor submission order. ---
    let mut seq: Vec<(usize, usize, usize)> = details // (seq, round, submit idx)
        .iter()
        .enumerate()
        .filter_map(|(j, d)| Some((d.dispatch_seq?, d.dispatch_round?, j)))
        .collect();
    seq.sort_unstable();
    for (k, (s, round, _)) in seq.iter().enumerate() {
        if *s != k {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                "schedule",
                format!("dispatch sequence is not dense: position {k} holds seq {s}"),
            ));
            break;
        }
        if k > 0 && *round < seq[k - 1].1 {
            diags.push(Diagnostic::error(
                "cluster-dispatch-rounds",
                "schedule",
                format!("seq {s} dispatched in round {round}, before its predecessor"),
            ));
        }
    }
    if report.schedule == "fifo" {
        for w in seq.windows(2) {
            let ((_, ra, ja), (_, rb, jb)) = (w[0], w[1]);
            let cap = |j: usize| {
                report.jobs[j]
                    .device
                    .map(|d| report.devices[d].capacity_bytes)
            };
            if ra == rb && cap(ja) == cap(jb) && ja > jb {
                diags.push(Diagnostic::error(
                    "cluster-fifo-order",
                    "schedule",
                    format!(
                        "fifo dispatched job #{ja} before job #{jb} in round {ra} \
                         on equal-capacity devices"
                    ),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_cluster::{mixed_workload, run_cluster, v100_pool, ClusterSpec, SchedulePolicy};

    #[test]
    fn clean_run_lints_clean() {
        for schedule in [
            SchedulePolicy::Fifo,
            SchedulePolicy::ShortestPredicted,
            SchedulePolicy::BestFitMemory,
        ] {
            let spec = ClusterSpec::new(mixed_workload(2), v100_pool(2))
                .schedule(schedule)
                .record(true);
            let outcome = run_cluster(&spec);
            let diags = lint_cluster(&outcome);
            assert!(
                diags.is_empty(),
                "{}: {:?}",
                schedule.name(),
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn corrupted_rollup_is_caught() {
        let spec = ClusterSpec::new(mixed_workload(2), v100_pool(2)).record(true);
        let mut outcome = run_cluster(&spec);
        outcome.report.makespan_ns += 1;
        outcome.report.jobs[0].oom_iters += 1;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-makespan"), "{checks:?}");
        assert!(checks.contains(&"cluster-row-vs-summary"), "{checks:?}");
        assert!(checks.contains(&"cluster-oom-total"), "{checks:?}");
    }
}
