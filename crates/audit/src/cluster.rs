//! Fleet-level lint: independent re-derivation of a
//! [`ClusterReport`](mimose_cluster::ClusterReport)'s rollup numbers from
//! the per-job evidence the scheduler kept, plus structural invariants of
//! the dispatch sequence.
//!
//! The scheduler folds per-iteration reports into per-job summaries and
//! those into the fleet rollup; this pass refuses to trust any of it. It
//! re-folds the iteration reports, re-sums the device counters, replays
//! recorded event streams through [`fold_events`], and cross-checks every
//! number the report claims.
//!
//! The fleet-failure checks prove the failure protocol's central promise:
//! a lost device's jobs are never silently dropped. Every checkpointed
//! job must carry a balanced event chain (checkpoint → requeue → backoff,
//! then migrate or an explicit shed/fail), every rollup counter must
//! re-derive from that chain, every migration must land on a device the
//! embedded fault plan says was reachable, and retries must stay within
//! the configured budget.

use crate::diag::Diagnostic;
use mimose_cluster::{ClusterOutcome, FleetEventKind, JobOutcome};
use mimose_runtime::{fold_events, RunSummary};

/// Audit a finished cluster run. Returns one diagnostic per violated
/// invariant; an empty vector means the rollup is exactly reproducible
/// from the evidence.
#[must_use]
pub fn lint_cluster(outcome: &ClusterOutcome) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let report = &outcome.report;
    let details = &outcome.details;

    if report.jobs.len() != details.len() {
        diags.push(Diagnostic::error(
            "cluster-job-rows",
            "report",
            format!(
                "report has {} job rows but {} job details",
                report.jobs.len(),
                details.len()
            ),
        ));
        return diags; // every per-job check below would misalign
    }

    // --- Fleet event chain: tally per-job protocol steps once, for the
    // per-job and rollup cross-checks below. ---
    let n_jobs = report.jobs.len();
    let mut checkpoints = vec![0usize; n_jobs];
    let mut requeues = vec![0usize; n_jobs];
    let mut backoffs = vec![0usize; n_jobs];
    let mut migrates = vec![0usize; n_jobs];
    let mut sheds = vec![0usize; n_jobs];
    let mut event_cost = vec![0u64; n_jobs];
    let mut lost_by_event = vec![false; report.devices.len()];
    let mut last_round = 0usize;
    for e in &report.events {
        if e.round < last_round {
            diags.push(Diagnostic::error(
                "cluster-event-order",
                "fleet",
                format!(
                    "{} event in round {} after an event in round {last_round}",
                    e.kind.tag(),
                    e.round
                ),
            ));
        }
        last_round = e.round;
        let Some(j) = e.kind.job() else {
            if let FleetEventKind::DeviceDown {
                device,
                until_round: None,
            } = &e.kind
            {
                if *device < lost_by_event.len() {
                    lost_by_event[*device] = true;
                }
            }
            continue;
        };
        if j >= n_jobs {
            diags.push(Diagnostic::error(
                "cluster-event-job",
                "fleet",
                format!("{} event names job #{j}, out of range", e.kind.tag()),
            ));
            continue;
        }
        event_cost[j] += e.cost_ns;
        match &e.kind {
            FleetEventKind::Checkpoint { .. } => checkpoints[j] += 1,
            FleetEventKind::Requeue { .. } => requeues[j] += 1,
            FleetEventKind::Backoff { until_round, .. } => {
                backoffs[j] += 1;
                if *until_round <= e.round {
                    diags.push(Diagnostic::error(
                        "cluster-backoff-window",
                        report.jobs[j].name.clone(),
                        format!(
                            "backoff until round {until_round} is not after round {}",
                            e.round
                        ),
                    ));
                }
            }
            FleetEventKind::Migrate { to, .. } => {
                migrates[j] += 1;
                if report.fault_plan.is_lost(*to, e.round) {
                    diags.push(Diagnostic::error(
                        "cluster-migrate-target",
                        report.jobs[j].name.clone(),
                        format!(
                            "migrated onto device {to} in round {}, but the fault plan \
                             says that device was already lost",
                            e.round
                        ),
                    ));
                }
            }
            FleetEventKind::Shed { .. } => sheds[j] += 1,
            _ => {}
        }
    }

    // --- Per-job: re-fold the iteration reports and compare. ---
    let mut first_dispatches = 0usize;
    for (j, (row, detail)) in report.jobs.iter().zip(details).enumerate() {
        let subject = row.name.clone();
        if detail.dispatch_seq.is_some() {
            first_dispatches += 1;
        }
        // A job with no device must have been settled, never starved.
        if row.device.is_none() && row.outcome.finished() {
            diags.push(Diagnostic::error(
                "cluster-starvation",
                subject.clone(),
                "job marked finished but never dispatched to a device",
            ));
        }
        // Failure-protocol chain balance and the no-silent-drop rule.
        if checkpoints[j] != requeues[j] || requeues[j] != backoffs[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-chain",
                subject.clone(),
                format!(
                    "unbalanced protocol chain: {} checkpoints, {} requeues, {} backoffs",
                    checkpoints[j], requeues[j], backoffs[j]
                ),
            ));
        }
        if migrates[j] > requeues[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-chain",
                subject.clone(),
                format!(
                    "{} migrations exceed {} requeues (migrated without a checkpoint)",
                    migrates[j], requeues[j]
                ),
            ));
        }
        if checkpoints[j] > 0
            && !matches!(
                row.outcome,
                JobOutcome::Migrated | JobOutcome::Shed(_) | JobOutcome::Failed(_)
            )
        {
            diags.push(Diagnostic::error(
                "cluster-displaced-outcome",
                subject.clone(),
                format!(
                    "job was checkpointed off a device but its outcome is {:?} — \
                     displaced work must end migrated, shed, or failed",
                    row.outcome.tag()
                ),
            ));
        }
        if (sheds[j] > 0) != matches!(row.outcome, JobOutcome::Shed(_)) || sheds[j] > 1 {
            diags.push(Diagnostic::error(
                "cluster-shed-outcome",
                subject.clone(),
                format!(
                    "{} shed events for outcome {:?}",
                    sheds[j],
                    row.outcome.tag()
                ),
            ));
        }
        if row.outcome == JobOutcome::Migrated && migrates[j] == 0 {
            diags.push(Diagnostic::error(
                "cluster-migrated-evidence",
                subject.clone(),
                "outcome says migrated but no migrate event exists",
            ));
        }
        if row.migrations != migrates[j] {
            diags.push(Diagnostic::error(
                "cluster-migration-count",
                subject.clone(),
                format!(
                    "row claims {} migrations, events show {}",
                    row.migrations, migrates[j]
                ),
            ));
        }
        if row.retries != requeues[j] {
            diags.push(Diagnostic::error(
                "cluster-retry-count",
                subject.clone(),
                format!(
                    "row claims {} retries, events show {}",
                    row.retries, requeues[j]
                ),
            ));
        }
        if row.retries > report.fleet.max_retries {
            diags.push(Diagnostic::error(
                "cluster-retry-budget",
                subject.clone(),
                format!(
                    "{} retries exceed the configured budget {}",
                    row.retries, report.fleet.max_retries
                ),
            ));
        }
        if row.fleet_overhead_ns != event_cost[j] {
            diags.push(Diagnostic::error(
                "cluster-fleet-overhead",
                subject.clone(),
                format!(
                    "row attributes {} ns of fleet overhead, events sum to {} ns",
                    row.fleet_overhead_ns, event_cost[j]
                ),
            ));
        }
        // Placement segments must partition the job's execution.
        let seg_iters: usize = row.placements.iter().map(|p| p.iters).sum();
        let seg_busy: u64 = row.placements.iter().map(|p| p.busy_ns).sum();
        if seg_iters != row.iters || seg_busy != row.total_ns {
            diags.push(Diagnostic::error(
                "cluster-placement-sum",
                subject.clone(),
                format!(
                    "placements sum to {seg_iters} iters / {seg_busy} ns, \
                     row says {} iters / {} ns",
                    row.iters, row.total_ns
                ),
            ));
        }
        if let (Some(last), Some(dev)) = (row.placements.last(), row.device) {
            if last.device != dev {
                diags.push(Diagnostic::error(
                    "cluster-placement-device",
                    subject.clone(),
                    format!(
                        "last placement ran on device {}, row says device {dev}",
                        last.device
                    ),
                ));
            }
        }
        if row.device.is_some() && detail.dispatch_seq.is_none() {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                subject.clone(),
                "dispatched job carries no dispatch sequence number",
            ));
        }

        let mut refold = RunSummary::default();
        for r in &detail.reports {
            refold.absorb(r);
        }
        let s = &detail.summary;
        if (refold.iters, refold.total_ns, refold.max_peak_bytes)
            != (s.iters, s.total_ns, s.max_peak_bytes)
            || (
                refold.oom_iters,
                refold.recovered_iters,
                refold.recovery_events,
            ) != (s.oom_iters, s.recovered_iters, s.recovery_events)
            || refold.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-summary-refold",
                subject.clone(),
                format!(
                    "re-folding {} iteration reports disagrees with the session summary \
                     (refold {refold:?} vs summary {s:?})",
                    detail.reports.len()
                ),
            ));
        }
        if row.iters != s.iters
            || row.total_ns != s.total_ns
            || row.max_peak_bytes != s.max_peak_bytes
            || row.oom_iters != s.oom_iters
            || row.recovered_iters != s.recovered_iters
            || row.recovery_events != s.recovery_events
            || row.shuttle_iters != s.shuttle_iters
        {
            diags.push(Diagnostic::error(
                "cluster-row-vs-summary",
                subject.clone(),
                "report row disagrees with the job's session summary",
            ));
        }
        if row.outcome == JobOutcome::Completed && row.iters == 0 {
            diags.push(Diagnostic::error(
                "cluster-empty-completion",
                subject.clone(),
                "job completed with zero iterations executed",
            ));
        }

        // Recorded event streams must reproduce the reported peaks and
        // stay within the arena each iteration actually ran under.
        if !detail.records.is_empty() {
            if detail.records.len() != detail.reports.len() {
                diags.push(Diagnostic::error(
                    "cluster-record-count",
                    subject.clone(),
                    format!(
                        "{} event records for {} iteration reports",
                        detail.records.len(),
                        detail.reports.len()
                    ),
                ));
            }
            for (rec, rep) in detail.records.iter().zip(&detail.reports) {
                let fold = fold_events(rec.capacity, &rec.events);
                if fold.peak_used != rep.peak_bytes {
                    diags.push(Diagnostic::error(
                        "cluster-fold-peak",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "event fold peak {} != reported peak {}",
                            fold.peak_used, rep.peak_bytes
                        ),
                    ));
                }
                if rep.peak_extent > rec.capacity {
                    diags.push(Diagnostic::error(
                        "cluster-extent-capacity",
                        format!("{subject} iter {}", rec.iter),
                        format!(
                            "peak extent {} exceeds the iteration's arena capacity {}",
                            rep.peak_extent, rec.capacity
                        ),
                    ));
                }
            }
        }
    }

    // --- Devices: counters must re-derive from the jobs' placement
    // segments (a migrated job's iterations split across devices). ---
    for dev in &report.devices {
        let iters: usize = report
            .jobs
            .iter()
            .flat_map(|j| &j.placements)
            .filter(|p| p.device == dev.index)
            .map(|p| p.iters)
            .sum();
        if iters != dev.iters {
            diags.push(Diagnostic::error(
                "cluster-device-iters",
                format!("device {}", dev.index),
                format!(
                    "device counted {} iters, its placement segments sum to {iters}",
                    dev.iters
                ),
            ));
        }
        let busy: u64 = report
            .jobs
            .iter()
            .flat_map(|j| &j.placements)
            .filter(|p| p.device == dev.index)
            .map(|p| p.busy_ns)
            .sum();
        if busy != dev.busy_ns {
            diags.push(Diagnostic::error(
                "cluster-device-busy",
                format!("device {}", dev.index),
                format!(
                    "device busy {} ns, its placement segments sum to {busy} ns",
                    dev.busy_ns
                ),
            ));
        }
        if dev.lost != lost_by_event[dev.index] {
            diags.push(Diagnostic::error(
                "cluster-device-lost",
                format!("device {}", dev.index),
                format!(
                    "device lost flag {} disagrees with the event chain ({})",
                    dev.lost, lost_by_event[dev.index]
                ),
            ));
        }
    }

    // --- Fleet rollup: totals, makespan, utilization. ---
    let max_busy = report.devices.iter().map(|d| d.busy_ns).max().unwrap_or(0);
    if report.makespan_ns != max_busy {
        diags.push(Diagnostic::error(
            "cluster-makespan",
            "report",
            format!(
                "makespan {} != max device busy {max_busy}",
                report.makespan_ns
            ),
        ));
    }
    let sum_busy: u64 = report.devices.iter().map(|d| d.busy_ns).sum();
    if report.busy_ns != sum_busy {
        diags.push(Diagnostic::error(
            "cluster-busy-sum",
            "report",
            format!("busy {} != device sum {sum_busy}", report.busy_ns),
        ));
    }
    if !(0.0..=100.0 + 1e-9).contains(&report.utilization_pct) {
        diags.push(Diagnostic::error(
            "cluster-utilization-bounds",
            "report",
            format!("utilization {} % out of [0, 100]", report.utilization_pct),
        ));
    }
    if report.makespan_ns > 0 {
        let expect =
            sum_busy as f64 / (report.makespan_ns as f64 * report.devices.len() as f64) * 100.0;
        if (expect - report.utilization_pct).abs() > 1e-6 {
            diags.push(Diagnostic::error(
                "cluster-utilization-value",
                "report",
                format!(
                    "utilization {} % does not re-derive ({expect} %)",
                    report.utilization_pct
                ),
            ));
        }
    }
    for (check, reported, derived) in [
        (
            "cluster-oom-total",
            report.oom_iters,
            report.jobs.iter().map(|j| j.oom_iters).sum::<usize>(),
        ),
        (
            "cluster-recovered-total",
            report.recovered_iters,
            report.jobs.iter().map(|j| j.recovered_iters).sum(),
        ),
        (
            "cluster-recovery-total",
            report.recovery_events,
            report.jobs.iter().map(|j| j.recovery_events).sum(),
        ),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "report",
                format!("rollup says {reported}, job rows sum to {derived}"),
            ));
        }
    }

    // --- Fleet rollup: every counter re-derives from the event chain. ---
    let total_migrates: usize = migrates.iter().sum();
    let total_cost: u64 = report.events.iter().map(|e| e.cost_ns).sum();
    let failed_rows = report
        .jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
        .count();
    for (check, reported, derived) in [
        (
            "cluster-fleet-checkpoints",
            report.fleet.checkpoints,
            checkpoints.iter().sum::<usize>(),
        ),
        (
            "cluster-fleet-migrations",
            report.fleet.migrations,
            total_migrates,
        ),
        (
            "cluster-fleet-shed",
            report.fleet.shed_jobs,
            sheds.iter().sum::<usize>(),
        ),
        (
            "cluster-fleet-failed",
            report.fleet.failed_jobs,
            failed_rows,
        ),
        (
            "cluster-fleet-lost",
            report.fleet.devices_lost,
            lost_by_event.iter().filter(|l| **l).count(),
        ),
    ] {
        if reported != derived {
            diags.push(Diagnostic::error(
                check,
                "fleet",
                format!("rollup says {reported}, the event chain derives {derived}"),
            ));
        }
    }
    if report.fleet.overhead_ns != total_cost {
        diags.push(Diagnostic::error(
            "cluster-fleet-overhead",
            "fleet",
            format!(
                "rollup attributes {} ns of fleet overhead, events sum to {total_cost} ns",
                report.fleet.overhead_ns
            ),
        ));
    }

    // Admission bookkeeping: every dispatch — first placement or
    // migration — passed through the controller; every undispatched job
    // was rejected or failed.
    let adm = &report.admission;
    if adm.admitted + adm.demoted != first_dispatches + total_migrates {
        diags.push(Diagnostic::error(
            "cluster-admission-count",
            "report",
            format!(
                "{} admitted + {} demoted != {first_dispatches} first dispatches + \
                 {total_migrates} migrations",
                adm.admitted, adm.demoted
            ),
        ));
    }
    if adm.verified_admits > adm.admitted {
        diags.push(Diagnostic::error(
            "cluster-verified-admits",
            "report",
            format!(
                "{} statically verified admits exceed {} total admits",
                adm.verified_admits, adm.admitted
            ),
        ));
    }
    let rejected_rows = report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::Rejected)
        .count();
    if adm.rejected != rejected_rows {
        diags.push(Diagnostic::error(
            "cluster-rejection-count",
            "report",
            format!(
                "admission counted {} rejections, {rejected_rows} job rows are rejected",
                adm.rejected
            ),
        ));
    }
    if adm.within_10pct > adm.predictions {
        diags.push(Diagnostic::error(
            "cluster-prediction-count",
            "report",
            format!(
                "{} accurate predictions out of {} scored",
                adm.within_10pct, adm.predictions
            ),
        ));
    }

    // --- Dispatch-sequence structure: the union of first dispatches and
    // migration dispatches must be unique, dense and round-monotone; and
    // under FIFO, same-round first dispatches onto equal-capacity devices
    // must honor submission order. ---
    let mut seq: Vec<(usize, usize, usize)> = details // (seq, round, submit idx)
        .iter()
        .enumerate()
        .filter_map(|(j, d)| Some((d.dispatch_seq?, d.dispatch_round?, j)))
        .collect();
    seq.sort_unstable();
    let mut all_dispatches = seq.clone();
    for e in &report.events {
        if let FleetEventKind::Migrate { job, seq: s, .. } = &e.kind {
            all_dispatches.push((*s, e.round, *job));
        }
    }
    all_dispatches.sort_unstable();
    for (k, (s, round, _)) in all_dispatches.iter().enumerate() {
        if *s != k {
            diags.push(Diagnostic::error(
                "cluster-dispatch-seq",
                "schedule",
                format!("dispatch sequence is not dense: position {k} holds seq {s}"),
            ));
            break;
        }
        if k > 0 && *round < all_dispatches[k - 1].1 {
            diags.push(Diagnostic::error(
                "cluster-dispatch-rounds",
                "schedule",
                format!("seq {s} dispatched in round {round}, before its predecessor"),
            ));
        }
    }
    if report.schedule == "fifo" {
        for w in seq.windows(2) {
            let ((_, ra, ja), (_, rb, jb)) = (w[0], w[1]);
            let cap = |j: usize| {
                report.jobs[j]
                    .device
                    .map(|d| report.devices[d].capacity_bytes)
            };
            if ra == rb && cap(ja) == cap(jb) && ja > jb {
                diags.push(Diagnostic::error(
                    "cluster-fifo-order",
                    "schedule",
                    format!(
                        "fifo dispatched job #{ja} before job #{jb} in round {ra} \
                         on equal-capacity devices"
                    ),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimose_cluster::{mixed_workload, run_cluster, v100_pool, ClusterSpec, SchedulePolicy};

    #[test]
    fn clean_run_lints_clean() {
        for schedule in [
            SchedulePolicy::Fifo,
            SchedulePolicy::ShortestPredicted,
            SchedulePolicy::BestFitMemory,
        ] {
            let spec = ClusterSpec::new(mixed_workload(2), v100_pool(2))
                .schedule(schedule)
                .record(true);
            let outcome = run_cluster(&spec);
            let diags = lint_cluster(&outcome);
            assert!(
                diags.is_empty(),
                "{}: {:?}",
                schedule.name(),
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn corrupted_rollup_is_caught() {
        let spec = ClusterSpec::new(mixed_workload(2), v100_pool(2)).record(true);
        let mut outcome = run_cluster(&spec);
        outcome.report.makespan_ns += 1;
        outcome.report.jobs[0].oom_iters += 1;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-makespan"), "{checks:?}");
        assert!(checks.contains(&"cluster-row-vs-summary"), "{checks:?}");
        assert!(checks.contains(&"cluster-oom-total"), "{checks:?}");
    }

    fn lossy_outcome() -> mimose_cluster::ClusterOutcome {
        use mimose_chaos::{DeviceFault, FleetFaultPlan};
        let faults =
            FleetFaultPlan::none(0).with_device_fault(1, DeviceFault::Lost { at_round: 2 });
        run_cluster(
            &ClusterSpec::new(mixed_workload(4), v100_pool(4))
                .faults(faults)
                .record(true),
        )
    }

    #[test]
    fn device_loss_run_lints_clean() {
        let outcome = lossy_outcome();
        // The scenario actually exercised the failure protocol.
        assert!(outcome.report.fleet.migrations >= 1);
        assert_eq!(outcome.report.fleet.devices_lost, 1);
        let diags = lint_cluster(&outcome);
        assert!(
            diags.is_empty(),
            "{:?}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_fleet_accounting_is_caught() {
        let mut outcome = lossy_outcome();
        let moved = outcome
            .report
            .jobs
            .iter()
            .position(|j| j.migrations > 0)
            .expect("scenario migrates a job");
        outcome.report.fleet.migrations += 1;
        outcome.report.jobs[moved].retries += 1;
        outcome.report.jobs[moved].fleet_overhead_ns += 1;
        outcome.report.devices[1].lost = false;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-fleet-migrations"), "{checks:?}");
        assert!(checks.contains(&"cluster-retry-count"), "{checks:?}");
        assert!(checks.contains(&"cluster-fleet-overhead"), "{checks:?}");
        assert!(checks.contains(&"cluster-device-lost"), "{checks:?}");
    }

    #[test]
    fn silently_dropped_job_is_caught() {
        let mut outcome = lossy_outcome();
        // Forge the cover-up: pretend the displaced job plain-completed and
        // erase its migration from the rollup and the row.
        let moved = outcome
            .report
            .jobs
            .iter()
            .position(|j| j.migrations > 0)
            .expect("scenario migrates a job");
        outcome.report.jobs[moved].outcome = JobOutcome::Completed;
        outcome.report.jobs[moved].migrations = 0;
        let diags = lint_cluster(&outcome);
        let checks: Vec<_> = diags.iter().map(|d| d.check).collect();
        assert!(checks.contains(&"cluster-displaced-outcome"), "{checks:?}");
        assert!(checks.contains(&"cluster-migration-count"), "{checks:?}");
    }
}
