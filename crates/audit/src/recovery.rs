//! Recovery-trace linting: structural invariants of the OOM-recovery
//! ladder's event chain.
//!
//! The executor's recovery ladder (`mimose-exec`) promises a strict
//! escalation discipline; this pass re-checks a finished iteration's
//! [`RecoveryEvent`] chain against it, independently of the engine:
//!
//! * **ladder order** — attempt numbers never decrease, and the event that
//!   closes an attempt (Restart/Fallback) is followed only by events of a
//!   *later* attempt;
//! * **bounded retries** — at most `max_restarts` Restart events, at most
//!   one Fallback, and nothing escalates after the Fallback;
//! * **monotone demotion** — checkpoint counts never decrease along the
//!   chain, and every Demotion/Restart/Fallback strictly adds checkpoints;
//! * **shrink discipline** — shrink factors stay in `(0, 1]` and are
//!   non-increasing (the driver only ever multiplies by a factor < 1);
//! * **inline bound** — no attempt carries more than
//!   `max_inline_per_attempt` inline (CoalesceRetry/Demotion) events.

use crate::diag::Diagnostic;
use mimose_planner::{RecoveryEvent, RecoveryRung};

/// Lint one iteration's recovery-event chain (chronological order, as
/// recorded on `IterationReport::recovery`). `max_restarts` and
/// `max_inline_per_attempt` are the configured ladder bounds
/// (`RecoveryConfig::max_restarts` / `max_inline_events`).
#[must_use]
pub fn lint_recovery_trace(
    events: &[RecoveryEvent],
    max_restarts: usize,
    max_inline_per_attempt: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut restarts = 0usize;
    let mut fallbacks = 0usize;
    let mut prev_attempt = 0usize;
    let mut prev_ckpt: Option<usize> = None;
    let mut prev_shrink = 1.0f64;
    let mut closed_attempt: Option<usize> = None;
    let mut inline_in_attempt = 0usize;

    for (i, e) in events.iter().enumerate() {
        let subject = format!("event {i} ({})", e.rung.name());

        // Ladder order: attempts are non-decreasing, and once an attempt is
        // closed by an escalation, later events belong to later attempts.
        if e.attempt < prev_attempt {
            diags.push(Diagnostic::error(
                "ladder-order",
                subject.clone(),
                format!(
                    "attempt {} after an event of attempt {prev_attempt}",
                    e.attempt
                ),
            ));
        }
        if let Some(closed) = closed_attempt {
            if e.attempt <= closed {
                diags.push(Diagnostic::error(
                    "ladder-order",
                    subject.clone(),
                    format!(
                        "event in attempt {} although attempt {closed} was already \
                         closed by a restart/fallback",
                        e.attempt
                    ),
                ));
            }
        }
        if e.attempt != prev_attempt {
            inline_in_attempt = 0;
        }
        prev_attempt = e.attempt;

        // Bounded retries + terminal fallback.
        match e.rung {
            RecoveryRung::Restart => {
                restarts += 1;
                if restarts > max_restarts {
                    diags.push(Diagnostic::error(
                        "unbounded-retries",
                        subject.clone(),
                        format!("restart #{restarts} exceeds the configured bound {max_restarts}"),
                    ));
                }
                if fallbacks > 0 {
                    diags.push(Diagnostic::error(
                        "escalation-after-fallback",
                        subject.clone(),
                        "restart after the terminal full-checkpoint fallback".to_string(),
                    ));
                }
                closed_attempt = Some(e.attempt);
            }
            RecoveryRung::Fallback => {
                fallbacks += 1;
                if fallbacks > 1 {
                    diags.push(Diagnostic::error(
                        "multiple-fallbacks",
                        subject.clone(),
                        "the full-checkpoint fallback fired more than once".to_string(),
                    ));
                }
                closed_attempt = Some(e.attempt);
            }
            RecoveryRung::CoalesceRetry | RecoveryRung::Demotion => {
                inline_in_attempt += 1;
                if inline_in_attempt > max_inline_per_attempt {
                    diags.push(Diagnostic::error(
                        "inline-bound",
                        subject.clone(),
                        format!(
                            "{inline_in_attempt} inline events in attempt {} exceed the \
                             configured bound {max_inline_per_attempt}",
                            e.attempt
                        ),
                    ));
                }
            }
        }

        // Monotone demotion: within an event, and along the whole chain.
        if e.ckpt_after < e.ckpt_before {
            diags.push(Diagnostic::error(
                "demotion-not-monotone",
                subject.clone(),
                format!(
                    "event un-checkpoints blocks ({} -> {})",
                    e.ckpt_before, e.ckpt_after
                ),
            ));
        }
        let escalating = matches!(
            e.rung,
            RecoveryRung::Demotion | RecoveryRung::Restart | RecoveryRung::Fallback
        );
        if escalating && e.ckpt_after == e.ckpt_before {
            diags.push(Diagnostic::warning(
                "ineffective-escalation",
                subject.clone(),
                format!(
                    "{} left the checkpoint count unchanged at {} — it freed no \
                     future memory",
                    e.rung.name(),
                    e.ckpt_after
                ),
            ));
        }
        if let Some(pc) = prev_ckpt {
            if e.ckpt_before < pc {
                diags.push(Diagnostic::error(
                    "demotion-not-monotone",
                    subject.clone(),
                    format!(
                        "checkpoint count regressed along the chain ({pc} -> {})",
                        e.ckpt_before
                    ),
                ));
            }
        }
        prev_ckpt = Some(e.ckpt_after.max(prev_ckpt.unwrap_or(0)));

        // Shrink discipline.
        if !(e.shrink_factor > 0.0 && e.shrink_factor <= 1.0) {
            diags.push(Diagnostic::error(
                "shrink-out-of-range",
                subject.clone(),
                format!("shrink factor {} outside (0, 1]", e.shrink_factor),
            ));
        }
        if e.shrink_factor > prev_shrink + 1e-12 {
            diags.push(Diagnostic::error(
                "shrink-not-monotone",
                subject.clone(),
                format!(
                    "shrink factor grew along the chain ({prev_shrink} -> {})",
                    e.shrink_factor
                ),
            ));
        }
        prev_shrink = prev_shrink.min(e.shrink_factor.max(f64::MIN_POSITIVE));
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;

    fn ev(
        rung: RecoveryRung,
        attempt: usize,
        ckpt_before: usize,
        ckpt_after: usize,
        shrink: f64,
    ) -> RecoveryEvent {
        RecoveryEvent {
            rung,
            attempt,
            phase: "forward",
            requested: 1 << 20,
            ckpt_before,
            ckpt_after,
            shrink_factor: shrink,
            time_cost_ns: 10,
            freed_bytes: 1 << 20,
        }
    }

    #[test]
    fn clean_escalating_chain_passes() {
        let chain = [
            ev(RecoveryRung::CoalesceRetry, 0, 2, 2, 1.0),
            ev(RecoveryRung::Demotion, 0, 2, 4, 1.0),
            ev(RecoveryRung::Restart, 0, 4, 6, 0.85),
            ev(RecoveryRung::CoalesceRetry, 1, 6, 6, 0.85),
            ev(RecoveryRung::Fallback, 1, 6, 12, 0.85),
        ];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn empty_chain_is_clean() {
        assert!(lint_recovery_trace(&[], 2, 64).is_empty());
    }

    #[test]
    fn excess_restarts_flagged() {
        let chain = [
            ev(RecoveryRung::Restart, 0, 0, 2, 0.85),
            ev(RecoveryRung::Restart, 1, 2, 4, 0.72),
            ev(RecoveryRung::Restart, 2, 4, 6, 0.61),
        ];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "unbounded-retries"),
            "{diags:?}"
        );
    }

    #[test]
    fn escalation_after_fallback_flagged() {
        let chain = [
            ev(RecoveryRung::Fallback, 0, 0, 12, 1.0),
            ev(RecoveryRung::Restart, 1, 12, 12, 0.85),
        ];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "escalation-after-fallback"),
            "{diags:?}"
        );
        let twice = [
            ev(RecoveryRung::Fallback, 0, 0, 12, 1.0),
            ev(RecoveryRung::Fallback, 1, 12, 12, 1.0),
        ];
        let diags = lint_recovery_trace(&twice, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "multiple-fallbacks"),
            "{diags:?}"
        );
    }

    #[test]
    fn regressions_flagged() {
        // Un-checkpointing within an event.
        let chain = [ev(RecoveryRung::Demotion, 0, 4, 2, 1.0)];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "demotion-not-monotone"),
            "{diags:?}"
        );
        // Checkpoint count regressing across events.
        let chain = [
            ev(RecoveryRung::Demotion, 0, 2, 4, 1.0),
            ev(RecoveryRung::Restart, 0, 2, 3, 0.85),
        ];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "demotion-not-monotone"),
            "{diags:?}"
        );
        // Attempt number going backwards.
        let chain = [
            ev(RecoveryRung::Restart, 1, 0, 2, 0.85),
            ev(RecoveryRung::CoalesceRetry, 0, 2, 2, 0.85),
        ];
        let diags = lint_recovery_trace(&chain, 2, 64);
        assert!(diags.iter().any(|d| d.check == "ladder-order"), "{diags:?}");
    }

    #[test]
    fn shrink_discipline_enforced() {
        let grow = [
            ev(RecoveryRung::Restart, 0, 0, 2, 0.85),
            ev(RecoveryRung::Restart, 1, 2, 4, 0.95),
        ];
        let diags = lint_recovery_trace(&grow, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "shrink-not-monotone"),
            "{diags:?}"
        );
        let bad = [ev(RecoveryRung::Restart, 0, 0, 2, 1.5)];
        let diags = lint_recovery_trace(&bad, 2, 64);
        assert!(
            diags.iter().any(|d| d.check == "shrink-out-of-range"),
            "{diags:?}"
        );
    }

    #[test]
    fn inline_bound_enforced() {
        let chain: Vec<RecoveryEvent> = (0..5)
            .map(|_| ev(RecoveryRung::CoalesceRetry, 0, 2, 2, 1.0))
            .collect();
        let diags = lint_recovery_trace(&chain, 2, 4);
        assert!(diags.iter().any(|d| d.check == "inline-bound"), "{diags:?}");
        assert!(lint_recovery_trace(&chain, 2, 5)
            .iter()
            .all(|d| d.check != "inline-bound"));
    }
}
