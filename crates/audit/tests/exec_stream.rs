//! End-to-end: record real engine runs and push their event streams
//! through the stream auditor — the same pipeline the CI smoke job runs.

use mimose_audit::{audit_exec_events, has_errors};
use mimose_exec::{BlockIteration, DtrIteration};
use mimose_models::builders::{bert_base, BertHead};
use mimose_models::{ModelInput, ModelProfile};
use mimose_planner::CheckpointPlan;
use mimose_simgpu::DeviceProfile;

fn profile(seq: usize) -> ModelProfile {
    bert_base(BertHead::Classification { labels: 2 })
        .profile(&ModelInput::tokens(32, seq))
        .unwrap()
}

#[test]
fn recorded_block_run_audits_clean() {
    let p = profile(128);
    let dev = DeviceProfile::v100();
    let plan = CheckpointPlan::from_indices(p.blocks.len(), &[1, 3, 5]).unwrap();
    let capacity = 64usize << 30;
    let (run, events, stats) = BlockIteration::plan(&p, &plan)
        .device(&dev)
        .capacity(capacity)
        .planning_ns(1000)
        .run_recorded();
    assert!(run.report.ok());
    let diags = audit_exec_events(capacity, &events, Some(&stats));
    assert!(!has_errors(&diags), "stream audit found errors: {diags:?}");
}

#[test]
fn recorded_dtr_run_audits_clean() {
    let p = profile(100);
    let dev = DeviceProfile::v100();
    let capacity = 16usize << 30;
    let (report, events, stats) = DtrIteration::new(&p, 6 << 30)
        .device(&dev)
        .capacity(capacity)
        .run_recorded();
    assert!(report.ok());
    let diags = audit_exec_events(capacity, &events, Some(&stats));
    assert!(!has_errors(&diags), "stream audit found errors: {diags:?}");
}

#[test]
fn corrupted_stream_is_caught() {
    use mimose_runtime::ExecEvent;
    let p = profile(64);
    let dev = DeviceProfile::v100();
    let capacity = 64usize << 30;
    let plan = CheckpointPlan::none(p.blocks.len());
    let (_, mut events, _) = BlockIteration::plan(&p, &plan)
        .device(&dev)
        .capacity(capacity)
        .run_recorded();
    // Duplicate the first Free event: a double-free the shadow must flag.
    let free = events
        .iter()
        .find(|e| matches!(e, ExecEvent::Free { .. }))
        .expect("stream has frees")
        .clone();
    events.push(free);
    let diags = audit_exec_events(capacity, &events, None);
    assert!(has_errors(&diags), "double-free must be flagged");
}
