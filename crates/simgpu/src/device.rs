//! Device cost profile: converts the operator cost model (FLOPs + bytes
//! moved) into virtual time via a roofline rule, and holds the calibration
//! constants for framework/planner overheads.
//!
//! Constants are calibrated to a V100-class card so the *shapes* of the
//! paper's results (overhead percentages, who-wins orderings) reproduce;
//! absolute times are not expected to match the authors' testbed.

/// Cost constants of the simulated GPU + framework.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Sustained compute throughput in FLOP/s (fp32, after efficiency
    /// derating — V100 peak is 15.7 TFLOP/s; real kernels sustain ~35-50 %).
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth in B/s (V100 HBM2: 900 GB/s peak,
    /// ~75 % achievable).
    pub bytes_per_sec: f64,
    /// Fixed per-operator kernel-launch latency in ns.
    pub kernel_launch_ns: f64,
    /// Total device memory in bytes (V100: 16 GiB).
    pub total_mem_bytes: usize,
    /// Per-saved-tensor bookkeeping cost charged to DTR-style runtime
    /// planners for maintaining checkpointing metadata (timestamps, costs)
    /// on every operator, in ns. Calibrated so DTR's cost-maintenance
    /// overhead lands in the paper's observed 20-40 % band (Fig 5).
    pub dtr_meta_ns_per_tensor: f64,
    /// Per-candidate scan cost of one DTR eviction search, in ns.
    pub dtr_search_ns_per_tensor: f64,
    /// Cost of one simulated allocator call (cudaMalloc-equivalents are
    /// cached; this is the caching-allocator fast path), in ns.
    pub alloc_ns: f64,
    /// Sustained host↔device copy bandwidth in B/s (PCIe 3.0 x16:
    /// ~12 GB/s achievable of 16 GB/s peak) — used by swapping planners.
    pub pcie_bytes_per_sec: f64,
    /// Fraction of a swap transfer that overlaps with computation when the
    /// adjacent blocks are busy (double-buffered copy engines).
    pub swap_overlap: f64,
}

impl DeviceProfile {
    /// V100-16GB calibration used throughout the evaluation.
    #[must_use]
    pub fn v100() -> Self {
        DeviceProfile {
            flops_per_sec: 6.0e12,
            bytes_per_sec: 6.5e11,
            kernel_launch_ns: 4_000.0,
            total_mem_bytes: 16 << 30,
            dtr_meta_ns_per_tensor: 340_000.0,
            dtr_search_ns_per_tensor: 6_000.0,
            alloc_ns: 700.0,
            pcie_bytes_per_sec: 1.2e10,
            swap_overlap: 0.65,
        }
    }

    /// Non-overlapped time of transferring `bytes` over PCIe, in ns.
    #[inline]
    #[must_use]
    pub fn swap_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec * 1e9 * (1.0 - self.swap_overlap)
    }

    /// A100-40GB calibration: ~3x the V100's sustained compute and ~2.4x
    /// the memory bandwidth, NVLink-class host link on SXM boards. Used by
    /// the device-sensitivity extension experiment.
    #[must_use]
    pub fn a100() -> Self {
        DeviceProfile {
            flops_per_sec: 1.8e13,
            bytes_per_sec: 1.55e12,
            kernel_launch_ns: 3_500.0,
            total_mem_bytes: 40 << 30,
            dtr_meta_ns_per_tensor: 340_000.0,
            dtr_search_ns_per_tensor: 6_000.0,
            alloc_ns: 700.0,
            pcie_bytes_per_sec: 2.2e10,
            swap_overlap: 0.7,
        }
    }

    /// Roofline execution time for a kernel with the given work.
    #[inline]
    #[must_use]
    pub fn exec_ns(&self, flops: f64, bytes_moved: usize) -> f64 {
        let compute = flops / self.flops_per_sec * 1e9;
        let memory = bytes_moved as f64 / self.bytes_per_sec * 1e9;
        self.kernel_launch_ns + compute.max(memory)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_kernel_uses_flops() {
        let d = DeviceProfile::v100();
        // 6 TFLOP at 6 TFLOP/s = 1 s.
        let ns = d.exec_ns(6.0e12, 1024);
        assert!((ns - 1e9 - d.kernel_launch_ns).abs() < 1.0);
    }

    #[test]
    fn memory_bound_kernel_uses_bandwidth() {
        let d = DeviceProfile::v100();
        let ns = d.exec_ns(10.0, 650_000_000_000);
        assert!((ns - 1e9 - d.kernel_launch_ns).abs() < 1.0);
    }

    #[test]
    fn launch_latency_floors_small_kernels() {
        let d = DeviceProfile::v100();
        assert!(d.exec_ns(1.0, 1) >= d.kernel_launch_ns);
    }

    #[test]
    fn a100_is_faster_than_v100() {
        let v = DeviceProfile::v100();
        let a = DeviceProfile::a100();
        assert!(a.exec_ns(1e12, 1 << 30) < v.exec_ns(1e12, 1 << 30));
        assert!(a.total_mem_bytes > v.total_mem_bytes);
        assert!(a.swap_ns(1 << 30) < v.swap_ns(1 << 30));
    }

    #[test]
    fn bert_iteration_time_is_plausible() {
        // Bert-base fwd ≈ 2 * 110e6 params * 4096 tokens ≈ 0.9 TFLOP;
        // fwd+bwd ≈ 2.7 TFLOP → ~450 ms at 6 TFLOP/s sustained. The paper's
        // TC-Bert iteration is 250 ms (bs 32, shorter seqs) — same decade.
        let d = DeviceProfile::v100();
        let ns = d.exec_ns(2.7e12, 0);
        let ms = ns / 1e6;
        assert!((100.0..1000.0).contains(&ms), "{ms} ms");
    }
}
