//! Byte-addressed device-memory arena with a size-indexed free list.
//!
//! This models the CUDA caching allocator at the level the paper's results
//! depend on: allocations carve address ranges out of a fixed-capacity
//! arena, frees coalesce with adjacent free ranges, and an allocation can
//! fail *even when enough total bytes are free* because no single contiguous
//! range fits — exactly the fragmentation pathology that inflates DTR's real
//! memory usage in Fig 5 (budget 4.2 GB, actual 6.7 GB).
//!
//! Free ranges are indexed **two ways, kept in lockstep**: by start address
//! (for coalescing) and by `(length, address)` (for fit selection). Best-fit
//! is a single O(log n) seek in the size index; first-fit keeps its exact
//! lowest-address semantics via a dual-cursor scan that stops as soon as
//! either cursor proves the answer; `largest_free()` — sampled on **every**
//! successful allocation for the fragmentation watermarks — drops from an
//! O(n) scan to the size index's last key.

use std::collections::{BTreeMap, BTreeSet};

/// Allocation alignment (the CUDA caching allocator rounds to 512 B).
pub const ARENA_ALIGN: usize = 512;

/// Round `bytes` up to the arena granule: the next multiple of
/// [`ARENA_ALIGN`], minimum one granule (a zero-byte request still occupies
/// an addressable range, mirroring the CUDA caching allocator).
///
/// This is the **single** alignment rule of the whole system — the arena's
/// carve sizes, the engines' residency arithmetic and the audit shadow all
/// call this one function (re-exported as `mimose_runtime::align_up`).
/// Saturates near `usize::MAX` instead of overflowing: the result is always
/// a multiple of `ARENA_ALIGN`.
#[inline]
#[must_use]
pub fn align_up(bytes: usize) -> usize {
    (bytes.saturating_add(ARENA_ALIGN - 1) & !(ARENA_ALIGN - 1)).max(ARENA_ALIGN)
}

/// Free-range selection policy.
///
/// The CUDA caching allocator behaves first-fit-ish within size pools;
/// best-fit trades allocation speed for tighter packing. The ablation bench
/// `ablation_allocator` compares their fragmentation under DTR's workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Lowest-address range that fits (default).
    #[default]
    FirstFit,
    /// Smallest range that fits (ties broken by address).
    BestFit,
}

/// Opaque handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(u64);

impl AllocId {
    /// The raw id value (stable within one arena; used by trace tooling).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild an id from its raw value. Only meaningful for trace tooling
    /// (replaying or synthesizing [`TraceEvent`] streams); passing a
    /// fabricated id to [`Arena::free`] is a simulator bug.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        AllocId(raw)
    }
}

/// One allocator event, recorded when tracing is enabled (see
/// [`Arena::set_tracing`]). The `mimose-audit` trace auditor replays these
/// events through an independent shadow allocator and cross-checks every
/// memory-safety and accounting invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A successful allocation.
    Alloc {
        /// Handle returned to the caller.
        id: AllocId,
        /// Start address of the carved range.
        offset: usize,
        /// Aligned length of the carved range.
        size: usize,
        /// Bytes the caller asked for (pre-alignment).
        requested: usize,
    },
    /// A free of a live allocation.
    Free {
        /// Handle being released.
        id: AllocId,
        /// Start address of the released range.
        offset: usize,
        /// Aligned length of the released range.
        size: usize,
    },
    /// A failed allocation.
    Oom {
        /// Aligned bytes requested.
        requested: usize,
        /// Total free bytes at the time of failure.
        free_bytes: usize,
        /// Largest contiguous free range at the time of failure.
        largest_free: usize,
    },
    /// The arena was reset to a single pristine free range.
    Reset,
    /// The arena was compacted: live allocations slid to the bottom of the
    /// address space (preserving address order), all free space coalesced
    /// into one trailing range. Emitted by the OOM-recovery ladder's
    /// coalesce-and-retry rung.
    Compact {
        /// Bytes of live allocations that changed address (the copy cost).
        moved: usize,
    },
    /// A deliberately injected (spurious) allocation failure from the
    /// fault-injection layer. The arena state is untouched; the caller saw
    /// an [`OomError`] that no real allocation produced.
    InjectedOom {
        /// Aligned bytes the failed request asked for.
        requested: usize,
    },
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested (aligned).
    pub requested: usize,
    /// Total free bytes at the time of failure.
    pub free_bytes: usize,
    /// Largest contiguous free range at the time of failure.
    pub largest_free: usize,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OOM: requested {} B, free {} B (largest contiguous {} B)",
            self.requested, self.free_bytes, self.largest_free
        )
    }
}

impl std::error::Error for OomError {}

impl OomError {
    /// True when the failure is due to fragmentation rather than genuine
    /// exhaustion: enough bytes are free in total, just not contiguously
    /// (`free_bytes >= requested` yet `largest_free < requested`).
    ///
    /// The distinction matters for policy: a fragmentation OOM can be cured
    /// by defragmentation or a different eviction order (the DTR pathology
    /// of Fig 5), while genuine exhaustion (`free_bytes < requested`) can
    /// only be cured by freeing more bytes. `requested` is the *aligned*
    /// request, so a caller asking for `free_bytes` exactly can still see
    /// a genuine-exhaustion OOM after rounding.
    #[must_use]
    pub fn is_fragmentation(&self) -> bool {
        self.free_bytes >= self.requested
    }
}

/// Running statistics of an arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Number of failed allocations.
    pub oom_events: u64,
    /// High-watermark of used bytes.
    pub peak_used: usize,
    /// High-watermark of fragmentation, measured as
    /// `free_bytes − largest_free`: the free bytes that could *not* satisfy
    /// a request the size of the largest contiguous range.
    ///
    /// Sampled after every **successful** allocation (the moment a carve
    /// can split a range) — not on frees or failed allocations, which only
    /// merge ranges or leave them untouched. A free that coalesces can
    /// therefore lower instantaneous fragmentation below `peak_frag`
    /// without the watermark ever moving; `peak_footprint` (updated on
    /// both paths) is the measure that tracks frees too. The trace auditor
    /// in `mimose-audit` recomputes this field with identical sampling.
    pub peak_frag: usize,
    /// High-watermark of the address-space extent (highest end address of
    /// any allocation). This approximates the bytes the caching allocator
    /// actually reserved from the device — the "actually used" memory that
    /// exceeds DTR's nominal budget in Fig 5.
    pub peak_extent: usize,
    /// High-watermark of `used + fragmentation` — the reserved-memory proxy
    /// (allocated bytes plus free-but-unusable cache) reported as "actual"
    /// usage in Fig 5.
    pub peak_footprint: usize,
    /// Number of [`Arena::compact`] calls (recovery-ladder defragmentation).
    pub compactions: u64,
    /// Number of injected (spurious) allocation failures consumed. These do
    /// not count towards `oom_events`, which tracks only genuine failures.
    pub injected_ooms: u64,
}

/// Fixed-capacity arena with a selectable fit policy.
///
/// ```
/// use mimose_simgpu::Arena;
///
/// let mut arena = Arena::new(1 << 20);
/// let a = arena.alloc(100_000).unwrap();
/// let b = arena.alloc(200_000).unwrap();
/// arena.free(a);
/// // Freed space is reusable; fragmentation is tracked explicitly.
/// assert!(arena.would_fit(100_000));
/// assert_eq!(arena.free_bytes() - arena.largest_free(), arena.fragmentation_bytes());
/// arena.free(b);
/// assert_eq!(arena.used_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Arena {
    capacity: usize,
    policy: AllocPolicy,
    /// Free ranges: start address → length; disjoint, non-adjacent.
    free: BTreeMap<usize, usize>,
    /// Secondary index of the same ranges: `(length, address)`, kept in
    /// lockstep with `free` (see [`Arena::check_invariants`]). Best-fit and
    /// `largest_free` read this map.
    free_by_size: BTreeMap<(usize, usize), ()>,
    /// Live allocations: id → (start, length).
    live: BTreeMap<AllocId, (usize, usize)>,
    next_id: u64,
    used: usize,
    stats: ArenaStats,
    /// Event log, recorded only when tracing is enabled.
    trace: Option<Vec<TraceEvent>>,
    /// Total `alloc` calls so far (1-based ordinal of the next attempt is
    /// `alloc_attempts + 1`); the key space for spurious-failure injection.
    alloc_attempts: u64,
    /// Alloc-attempt ordinals that fail spuriously (one-shot, consumed on
    /// use). Empty by default: the happy path never consults injection
    /// beyond one set lookup.
    fail_attempts: BTreeSet<u64>,
}

impl Arena {
    /// Create a first-fit arena of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Arena::with_policy(capacity, AllocPolicy::FirstFit)
    }

    /// Create an arena with an explicit fit policy.
    #[must_use]
    pub fn with_policy(capacity: usize, policy: AllocPolicy) -> Self {
        let mut free = BTreeMap::new();
        let mut free_by_size = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
            free_by_size.insert((capacity, 0), ());
        }
        Arena {
            capacity,
            policy,
            free,
            free_by_size,
            live: BTreeMap::new(),
            next_id: 0,
            used: 0,
            stats: ArenaStats::default(),
            trace: None,
            alloc_attempts: 0,
            fail_attempts: BTreeSet::new(),
        }
    }

    /// Insert a free range into both indices.
    #[inline]
    fn insert_free(&mut self, addr: usize, len: usize) {
        self.free.insert(addr, len);
        self.free_by_size.insert((len, addr), ());
    }

    /// Remove a free range from both indices.
    #[inline]
    fn remove_free(&mut self, addr: usize, len: usize) {
        self.free.remove(&addr);
        self.free_by_size.remove(&(len, addr));
    }

    /// Enable or disable event tracing. Enabling starts a fresh log;
    /// disabling discards it. Tracing costs one `Vec` push per allocator
    /// call and is off by default.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded events so far, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.trace.as_deref()
    }

    /// Take ownership of the recorded events, leaving an empty log (tracing
    /// stays enabled). Returns an empty vec when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// The arena's fit policy.
    #[must_use]
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Arena capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes currently free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used
    }

    /// Largest contiguous free range. O(log n) via the size index (this is
    /// on the allocation fast path: the fragmentation watermarks sample it
    /// after every successful carve).
    #[must_use]
    pub fn largest_free(&self) -> usize {
        self.free_by_size
            .last_key_value()
            .map(|(&(len, _), _)| len)
            .unwrap_or(0)
    }

    /// Free bytes that cannot satisfy a request the size of the largest
    /// contiguous range — the fragmentation measure reported in Fig 5/§VI-B.
    #[must_use]
    pub fn fragmentation_bytes(&self) -> usize {
        self.free_bytes() - self.largest_free()
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Whether a request of `bytes` (unaligned) would currently succeed.
    /// O(log n): any fitting range exists iff the largest one fits.
    #[must_use]
    pub fn would_fit(&self, bytes: usize) -> bool {
        self.largest_free() >= Self::aligned(bytes)
    }

    #[inline]
    fn aligned(bytes: usize) -> usize {
        align_up(bytes)
    }

    /// First-fit selection: the lowest-address range with `len >= need`,
    /// found by racing two cursors — one over the address index (stops at
    /// the first fitting range it meets), one over the size index's fitting
    /// candidates (narrows the lowest fitting address seen so far). The
    /// address cursor can never pass a fitting range, so whichever cursor
    /// resolves first yields the exact first-fit answer; the cost is
    /// O(min(position of first fit, number of fitting ranges)) map steps
    /// instead of always paying the address-scan worst case.
    fn first_fit(&self, need: usize) -> Option<(usize, usize)> {
        let mut by_addr = self.free.iter();
        let mut by_size = self.free_by_size.range((need, 0)..);
        let mut best: Option<(usize, usize)> = None; // lowest fitting (addr, len) so far
        loop {
            match by_addr.next() {
                Some((&addr, &len)) => {
                    if let Some((baddr, _)) = best {
                        if addr >= baddr {
                            // Every address below `baddr` was scanned and
                            // does not fit — `best` is the first fit.
                            return best;
                        }
                    }
                    if len >= need {
                        // First fitting range in address order.
                        return Some((addr, len));
                    }
                }
                // All ranges scanned without a fit: nothing fits at all
                // (the size cursor would otherwise have stopped us above).
                None => return None,
            }
            if let Some((&(len, addr), ())) = by_size.next() {
                if best.is_none_or(|(baddr, _)| addr < baddr) {
                    best = Some((addr, len));
                }
            } else if best.is_some() {
                // The size cursor enumerated every fitting range; the
                // lowest-address one among them is the first fit.
                return best;
            }
        }
    }

    /// Best-fit selection: smallest fitting range, ties broken by lower
    /// address — exactly the size index's successor of `(need, 0)`. O(log n).
    fn best_fit(&self, need: usize) -> Option<(usize, usize)> {
        self.free_by_size
            .range((need, 0)..)
            .next()
            .map(|(&(len, addr), _)| (addr, len))
    }

    /// Allocate `bytes` (rounded up to alignment, minimum one granule).
    pub fn alloc(&mut self, bytes: usize) -> Result<AllocId, OomError> {
        let need = Self::aligned(bytes);
        self.alloc_attempts += 1;
        if !self.fail_attempts.is_empty() && self.fail_attempts.remove(&self.alloc_attempts) {
            // Injected spurious failure: report OOM without touching state.
            // A retry is a fresh attempt ordinal, so one injection fails at
            // most one call (one-shot).
            self.stats.injected_ooms += 1;
            let err = OomError {
                requested: need,
                free_bytes: self.free_bytes(),
                largest_free: self.largest_free(),
            };
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::InjectedOom { requested: need });
            }
            return Err(err);
        }
        let slot = match self.policy {
            AllocPolicy::FirstFit => self.first_fit(need),
            AllocPolicy::BestFit => self.best_fit(need),
        };
        let Some((addr, len)) = slot else {
            self.stats.oom_events += 1;
            let err = OomError {
                requested: need,
                free_bytes: self.free_bytes(),
                largest_free: self.largest_free(),
            };
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::Oom {
                    requested: err.requested,
                    free_bytes: err.free_bytes,
                    largest_free: err.largest_free,
                });
            }
            return Err(err);
        };
        self.remove_free(addr, len);
        if len > need {
            self.insert_free(addr + need, len - need);
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, (addr, need));
        self.used += need;
        self.stats.allocs += 1;
        self.stats.peak_used = self.stats.peak_used.max(self.used);
        self.stats.peak_frag = self.stats.peak_frag.max(self.fragmentation_bytes());
        self.stats.peak_extent = self.stats.peak_extent.max(addr + need);
        self.stats.peak_footprint = self
            .stats
            .peak_footprint
            .max(self.used + self.fragmentation_bytes());
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::Alloc {
                id,
                offset: addr,
                size: need,
                requested: bytes,
            });
        }
        Ok(id)
    }

    /// Free a live allocation.
    ///
    /// # Panics
    /// Panics if `id` is not live (double free / foreign id) — that is a
    /// simulator bug, not a recoverable condition.
    pub fn free(&mut self, id: AllocId) {
        let (addr, len) = self
            .live
            .remove(&id)
            .unwrap_or_else(|| panic!("free of non-live allocation {id:?}"));
        self.used -= len;
        self.stats.frees += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::Free {
                id,
                offset: addr,
                size: len,
            });
        }
        // Coalesce with predecessor.
        let mut start = addr;
        let mut length = len;
        if let Some((&paddr, &plen)) = self.free.range(..addr).next_back() {
            if paddr + plen == addr {
                self.remove_free(paddr, plen);
                start = paddr;
                length += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&naddr, &nlen)) = self.free.range(addr + len..).next() {
            if addr + len == naddr {
                self.remove_free(naddr, nlen);
                length += nlen;
            }
        }
        self.insert_free(start, length);
        self.stats.peak_footprint = self
            .stats
            .peak_footprint
            .max(self.used + self.fragmentation_bytes());
    }

    /// Size (aligned) of a live allocation.
    #[must_use]
    pub fn size_of(&self, id: AllocId) -> Option<usize> {
        self.live.get(&id).map(|&(_, len)| len)
    }

    /// `(offset, aligned size)` of a live allocation. `None` when `id` is
    /// not live. Offsets are only stable until the next [`Arena::compact`].
    #[must_use]
    pub fn range_of(&self, id: AllocId) -> Option<(usize, usize)> {
        self.live.get(&id).copied()
    }

    /// Free every live allocation (end of iteration): the arena returns to a
    /// single free range.
    pub fn reset(&mut self) {
        self.live.clear();
        self.used = 0;
        self.free.clear();
        self.free_by_size.clear();
        if self.capacity > 0 {
            self.insert_free(0, self.capacity);
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::Reset);
        }
    }

    /// Compact the arena: slide every live allocation to the lowest
    /// possible address (preserving their relative address order) so all
    /// free space coalesces into a single trailing range. Returns the bytes
    /// of live data that changed address — the copy cost the caller should
    /// charge to its clock (a real defragmenter pays one device-to-device
    /// copy per moved allocation).
    ///
    /// Allocation ids remain valid; only their addresses change. The slide
    /// is fully deterministic given the live set, which lets the audit
    /// shadow allocator mirror it exactly when replaying a trace.
    pub fn compact(&mut self) -> usize {
        let mut by_addr: Vec<(AllocId, usize, usize)> = self
            .live
            .iter()
            .map(|(&id, &(addr, len))| (id, addr, len))
            .collect();
        by_addr.sort_by_key(|&(_, addr, _)| addr);
        let mut cursor = 0usize;
        let mut moved = 0usize;
        for (id, addr, len) in by_addr {
            if addr != cursor {
                moved += len;
                self.live.insert(id, (cursor, len));
            }
            cursor += len;
        }
        self.free.clear();
        self.free_by_size.clear();
        if cursor < self.capacity {
            self.insert_free(cursor, self.capacity - cursor);
        }
        self.stats.compactions += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent::Compact { moved });
        }
        moved
    }

    /// Arm spurious one-shot allocation failures: the `ordinals` (1-based
    /// indices into the stream of `alloc` calls on this arena, counted from
    /// its creation) will each fail exactly once with an [`OomError`], state
    /// untouched. Replaces any previously armed set. Ordinals already in
    /// the past never fire.
    pub fn set_spurious_failures(&mut self, ordinals: &[u64]) {
        self.fail_attempts = ordinals.iter().copied().collect();
    }

    /// Total `alloc` calls made on this arena so far (successful, failed,
    /// or injected).
    #[must_use]
    pub fn alloc_attempts(&self) -> u64 {
        self.alloc_attempts
    }

    /// Number of armed spurious failures that have not fired yet.
    #[must_use]
    pub fn pending_injected_failures(&self) -> usize {
        self.fail_attempts.len()
    }

    /// Internal invariant check used by tests: free ranges are disjoint,
    /// non-adjacent, within capacity, free+used == capacity, and the size
    /// index mirrors the address index exactly (lockstep).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<usize> = None;
        let mut total_free = 0usize;
        if self.free.len() != self.free_by_size.len() {
            return Err(format!(
                "index divergence: {} address entries vs {} size entries",
                self.free.len(),
                self.free_by_size.len()
            ));
        }
        for (&addr, &len) in &self.free {
            if len == 0 {
                return Err(format!("zero-length free range at {addr}"));
            }
            if !self.free_by_size.contains_key(&(len, addr)) {
                return Err(format!(
                    "free range [{addr}, +{len}) missing from size index"
                ));
            }
            if addr + len > self.capacity {
                return Err(format!(
                    "free range [{addr}, {}) beyond capacity",
                    addr + len
                ));
            }
            if let Some(pe) = prev_end {
                if addr < pe {
                    return Err(format!("overlapping free ranges at {addr}"));
                }
                if addr == pe {
                    return Err(format!("uncoalesced adjacent free ranges at {addr}"));
                }
            }
            prev_end = Some(addr + len);
            total_free += len;
        }
        let live_total: usize = self.live.values().map(|&(_, len)| len).sum();
        if live_total != self.used {
            return Err("live total != used".into());
        }
        if total_free + self.used != self.capacity {
            return Err(format!(
                "bytes lost: free {total_free} + used {} != capacity {}",
                self.used, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = Arena::new(1 << 20);
        let id = a.alloc(1000).unwrap();
        assert_eq!(a.size_of(id), Some(1024));
        assert_eq!(a.used_bytes(), 1024);
        a.free(id);
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.largest_free(), 1 << 20);
        a.check_invariants().unwrap();
    }

    #[test]
    fn oom_when_exhausted() {
        let mut a = Arena::new(4096);
        let _x = a.alloc(4096).unwrap();
        let err = a.alloc(1).unwrap_err();
        assert_eq!(err.free_bytes, 0);
        assert!(!err.is_fragmentation());
        assert_eq!(a.stats().oom_events, 1);
    }

    #[test]
    fn fragmentation_oom_detected() {
        let mut a = Arena::new(4 * 512);
        let x = a.alloc(512).unwrap();
        let y = a.alloc(512).unwrap();
        let _z = a.alloc(512).unwrap();
        a.free(x);
        a.free(y);
        // 1024 free bytes in one coalesced range — fits 1024.
        assert!(a.would_fit(1024));
        let w = a.alloc(1024).unwrap();
        a.free(w);
        // Now fragment: three granules live at 0/512/1024 plus z at 1536;
        // free the first and third to leave two non-adjacent 512 B holes.
        let p = a.alloc(512).unwrap();
        let q = a.alloc(512).unwrap();
        a.free(p);
        let r = a.alloc(512).unwrap(); // reuses the hole at 0
        assert_eq!(a.used_bytes(), 3 * 512);
        a.free(q);
        let err = a.alloc(1024).unwrap_err();
        assert!(err.is_fragmentation());
        assert_eq!(err.free_bytes, 1024);
        assert_eq!(err.largest_free, 512);
        assert_eq!(a.fragmentation_bytes(), 512);
        a.free(r);
        a.check_invariants().unwrap();
    }

    #[test]
    fn fragmentation_oom_vs_genuine_exhaustion() {
        // Same request size, two different failure causes — the OomError
        // classification must tell them apart.
        let mut a = Arena::new(3 * 512);
        let x = a.alloc(512).unwrap();
        let _y = a.alloc(512).unwrap();
        let z = a.alloc(512).unwrap();

        // Genuine exhaustion: zero bytes free anywhere.
        let err = a.alloc(1024).unwrap_err();
        assert!(!err.is_fragmentation());
        assert_eq!(err.free_bytes, 0);

        // Fragmentation: 1024 B free in total, but split into two
        // non-adjacent 512 B holes around the middle allocation.
        a.free(x);
        a.free(z);
        let err = a.alloc(1024).unwrap_err();
        assert!(err.is_fragmentation());
        assert_eq!(err.free_bytes, 1024);
        assert_eq!(err.largest_free, 512);
        // Both failures recorded; peak_frag was sampled at alloc time, and
        // no successful alloc has happened since the holes appeared.
        assert_eq!(a.stats().oom_events, 2);
        assert_eq!(a.fragmentation_bytes(), 512);
        let before = a.stats().peak_frag;
        let _w = a.alloc(512).unwrap(); // fills one hole: frag becomes 0
        assert_eq!(a.stats().peak_frag, before);
        a.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = Arena::new(4 * 512);
        let ids: Vec<_> = (0..4).map(|_| a.alloc(512).unwrap()).collect();
        // Free middle two in both orders; they must coalesce.
        a.free(ids[2]);
        a.free(ids[1]);
        assert_eq!(a.largest_free(), 1024);
        a.free(ids[0]);
        assert_eq!(a.largest_free(), 1536);
        a.free(ids[3]);
        assert_eq!(a.largest_free(), 4 * 512);
        a.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn double_free_panics() {
        let mut a = Arena::new(4096);
        let id = a.alloc(100).unwrap();
        a.free(id);
        a.free(id);
    }

    #[test]
    fn reset_restores_full_capacity() {
        let mut a = Arena::new(1 << 16);
        for _ in 0..10 {
            let _ = a.alloc(1000).unwrap();
        }
        a.reset();
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.largest_free(), 1 << 16);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn peak_used_tracks_high_watermark() {
        let mut a = Arena::new(1 << 16);
        let x = a.alloc(8192).unwrap();
        a.free(x);
        let _y = a.alloc(512).unwrap();
        assert_eq!(a.stats().peak_used, 8192);
    }

    #[test]
    fn zero_sized_alloc_takes_one_granule() {
        let mut a = Arena::new(4096);
        let id = a.alloc(0).unwrap();
        assert_eq!(a.size_of(id), Some(512));
    }

    #[test]
    fn compact_cures_fragmentation_oom() {
        let mut a = Arena::new(4 * 512);
        let x = a.alloc(512).unwrap();
        let y = a.alloc(512).unwrap();
        let z = a.alloc(512).unwrap();
        let _w = a.alloc(512).unwrap();
        a.free(x);
        a.free(z);
        // Two non-adjacent 512 B holes: a 1024 B request fails by
        // fragmentation alone.
        let err = a.alloc(1024).unwrap_err();
        assert!(err.is_fragmentation());
        let moved = a.compact();
        assert!(moved > 0);
        assert_eq!(a.fragmentation_bytes(), 0);
        assert_eq!(a.largest_free(), 1024);
        let big = a.alloc(1024).unwrap();
        assert_eq!(a.size_of(big), Some(1024));
        // Surviving ids stay valid and freeable after the slide.
        assert_eq!(a.size_of(y), Some(512));
        a.free(y);
        a.check_invariants().unwrap();
        assert_eq!(a.stats().compactions, 1);
    }

    #[test]
    fn compact_preserves_address_order_and_is_idempotent() {
        let mut a = Arena::new(8 * 512);
        let ids: Vec<_> = (0..6).map(|_| a.alloc(512).unwrap()).collect();
        a.free(ids[0]);
        a.free(ids[2]);
        a.free(ids[4]);
        let moved = a.compact();
        assert_eq!(moved, 3 * 512, "three survivors slid down");
        assert_eq!(a.largest_free(), 5 * 512, "one coalesced trailing range");
        // Survivors stay valid and freeable after the slide.
        for id in [ids[1], ids[3], ids[5]] {
            a.free(id);
            a.check_invariants().unwrap();
        }
        // A second compact on an already-packed arena moves nothing.
        let mut b = Arena::new(4096);
        let _k = b.alloc(512).unwrap();
        assert_eq!(b.compact(), 0);
        b.check_invariants().unwrap();
    }

    #[test]
    fn injected_failure_is_one_shot_and_state_preserving() {
        let mut a = Arena::new(1 << 16);
        a.set_tracing(true);
        let _x = a.alloc(1000).unwrap(); // attempt 1
        a.set_spurious_failures(&[2]);
        let err = a.alloc(1000).unwrap_err(); // attempt 2: injected
        assert!(err.is_fragmentation(), "arena actually had room");
        assert_eq!(a.pending_injected_failures(), 0);
        let _y = a.alloc(1000).unwrap(); // attempt 3: retry succeeds
        assert_eq!(a.stats().injected_ooms, 1);
        assert_eq!(a.stats().oom_events, 0, "injected OOMs are not genuine");
        assert_eq!(a.alloc_attempts(), 3);
        let trace = a.trace().unwrap();
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::InjectedOom { .. })));
        a.check_invariants().unwrap();
    }

    #[test]
    fn past_ordinals_never_fire() {
        let mut a = Arena::new(4096);
        let _x = a.alloc(100).unwrap();
        a.set_spurious_failures(&[1]); // attempt 1 already happened
        let _y = a.alloc(100).unwrap();
        assert_eq!(a.stats().injected_ooms, 0);
        assert_eq!(a.pending_injected_failures(), 1, "armed but unreachable");
    }

    #[test]
    fn compact_is_traced() {
        let mut a = Arena::new(4096);
        a.set_tracing(true);
        let x = a.alloc(512).unwrap();
        let _y = a.alloc(512).unwrap();
        a.free(x);
        let moved = a.compact();
        assert_eq!(moved, 512);
        assert!(a
            .trace()
            .unwrap()
            .iter()
            .any(|e| matches!(e, TraceEvent::Compact { moved: 512 })));
    }
}
