//! Deterministic virtual clock.
//!
//! All simulated durations are accounted in nanoseconds on a monotonically
//! advancing virtual clock, so experiment outputs are bit-identical across
//! runs and machines.

/// Virtual time, nanoseconds since iteration zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Duration since `earlier`.
    #[inline]
    #[must_use]
    pub fn since(self, earlier: VirtualTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// A monotone virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: VirtualTime,
}

impl VirtualClock {
    /// New clock at t=0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advance by `ns` nanoseconds.
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.now.0 += ns;
    }

    /// Advance by a floating-point nanosecond amount (cost-model output),
    /// rounding to the nearest nanosecond.
    #[inline]
    pub fn advance_f64(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0 && ns.is_finite(), "bad duration {ns}");
        self.now.0 += ns.round() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        let t0 = c.now();
        c.advance(100);
        c.advance_f64(0.4);
        let t1 = c.now();
        assert_eq!(t1.since(t0), 100);
        c.advance_f64(1.6);
        assert_eq!(c.now().since(t0), 102);
    }
}
