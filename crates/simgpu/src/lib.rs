//! # mimose-simgpu
//!
//! The simulated GPU substrate: a deterministic virtual clock, a V100-class
//! device cost profile (roofline FLOPs/bandwidth → ns), and a byte-addressed
//! memory arena with first-fit allocation, coalescing frees, OOM signalling
//! and fragmentation accounting.

#![warn(missing_docs)]

mod arena;
mod clock;
mod device;

pub use arena::{
    align_up, AllocId, AllocPolicy, Arena, ArenaStats, OomError, TraceEvent, ARENA_ALIGN,
};
pub use clock::{VirtualClock, VirtualTime};
pub use device::DeviceProfile;
