//! The regressor interface shared by every estimator candidate (Table IV).

/// Error fitting a regression model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than the model requires.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// xs and ys lengths differ.
    LengthMismatch,
    /// The underlying linear system was singular beyond recovery.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need {need}")
            }
            FitError::LengthMismatch => write!(f, "xs/ys length mismatch"),
            FitError::Singular => write!(f, "singular system"),
        }
    }
}

impl std::error::Error for FitError {}

/// A one-dimensional regression model `x → y` (input size → bytes).
///
/// The paper's estimator maps the scalar iteration input size to per-layer
/// memory usage, so one feature is all any candidate needs.
pub trait Regressor {
    /// Fit the model to the samples. Refitting replaces previous state.
    fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FitError>;

    /// Predict y at x. Must only be called after a successful `fit`.
    fn predict(&self, x: f64) -> f64;

    /// Model family name (for tables).
    fn name(&self) -> &'static str;
}

pub(crate) fn check_lengths(xs: &[f64], ys: &[f64], need: usize) -> Result<(), FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < need {
        return Err(FitError::TooFewSamples {
            got: xs.len(),
            need,
        });
    }
    Ok(())
}
