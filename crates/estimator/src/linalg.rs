//! Minimal dense linear algebra: Gaussian elimination with partial pivoting,
//! sized for the tiny normal-equation systems of polynomial fitting.

use crate::FitError;

/// Solve `A x = b` in place for a square row-major `a` of dimension `n`.
pub fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Result<Vec<f64>, FitError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return Err(FitError::Singular);
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_3x3() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], x = [1,2,3] → b = [7, 13, 1]
        let mut a = vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let mut b = vec![7.0, 13.0, 1.0];
        let x = solve(&mut a, &mut b, 3).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert_eq!(solve(&mut a, &mut b, 2), Err(FitError::Singular));
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![5.0, 7.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }
}
