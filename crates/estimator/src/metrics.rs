//! Accuracy metrics used by the Table IV/V comparisons.

/// Mean relative error `mean(|pred − true| / |true|)` over paired slices.
///
/// This is the "Error" column of Tables IV and V: the paper sums per-layer
/// predictions and compares against actual usage; callers pass those sums.
#[must_use]
///
/// # Panics
///
/// Panics when `pred` and `truth` differ in length.
pub fn mean_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs() / t.abs().max(f64::MIN_POSITIVE))
        .sum::<f64>()
        / pred.len() as f64
}

/// Maximum relative error over paired slices.
///
/// # Panics
///
/// Panics when `pred` and `truth` differ in length.
pub fn max_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs() / t.abs().max(f64::MIN_POSITIVE))
        .fold(0.0, f64::max)
}

/// Coefficient of determination R².
#[must_use]
///
/// # Panics
///
/// Panics when `pred` and `truth` differ in length.
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!truth.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_zero_error() {
        let t = [1.0, 2.0, 4.0];
        assert_eq!(mean_relative_error(&t, &t), 0.0);
        assert_eq!(max_relative_error(&t, &t), 0.0);
        assert_eq!(r_squared(&t, &t), 1.0);
    }

    #[test]
    fn relative_error_is_scale_free() {
        let pred = [110.0];
        let truth = [100.0];
        assert!((mean_relative_error(&pred, &truth) - 0.1).abs() < 1e-12);
        let pred = [1.1e9];
        let truth = [1.0e9];
        assert!((mean_relative_error(&pred, &truth) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_error_picks_worst_case() {
        let pred = [100.0, 150.0];
        let truth = [100.0, 100.0];
        assert!((max_relative_error(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r2_penalises_bad_fits() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [4.0, 3.0, 2.0, 1.0];
        assert!(r_squared(&pred, &truth) < 0.0);
    }
}
