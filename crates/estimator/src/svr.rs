//! ε-insensitive support-vector regression with an RBF kernel (the `SVR`
//! baseline of Table IV).
//!
//! Trained by active-set kernel ridge: an exact regularised least-squares
//! solve in the RBF feature space, followed by ε-insensitive refinement
//! passes that shrink targets to the tube boundary — a deterministic
//! small-sample stand-in for the SMO solver with the same qualitative
//! profile as sklearn's `SVR`: cubic-in-samples fit cost, kernel-sum
//! prediction (an order slower than the polynomial's Horner evaluation),
//! decent interpolation, poor extrapolation.

use crate::linalg::solve;
use crate::traits::check_lengths;
use crate::{FitError, Regressor};

/// RBF ε-SVR.
#[derive(Debug, Clone)]
pub struct SvrRegressor {
    /// ε-tube half-width as a fraction of max |y|.
    pub epsilon_frac: f64,
    /// Ridge regularisation strength.
    pub lambda: f64,
    /// RBF bandwidth as a multiple of the x range (γ = 1/(2·bw²) over the
    /// normalised distance).
    pub bandwidth_frac: f64,
    /// ε-refinement passes after the initial solve.
    pub passes: usize,
    // Fitted state.
    betas: Vec<f64>,
    centers: Vec<f64>,
    gamma: f64,
    y_scale: f64,
    x_lo: f64,
    x_hi: f64,
}

impl SvrRegressor {
    /// Defaults comparable to sklearn's `SVR(kernel="rbf")` on this problem.
    #[must_use]
    pub fn default_params() -> Self {
        SvrRegressor {
            epsilon_frac: 0.01,
            lambda: 4e-2,
            bandwidth_frac: 0.25,
            passes: 3,
            betas: Vec::new(),
            centers: Vec::new(),
            gamma: 1.0,
            y_scale: 1.0,
            x_lo: 0.0,
            x_hi: 1.0,
        }
    }

    /// Kernel with an additive constant term standing in for the bias.
    #[inline]
    fn kernel(&self, a: f64, b: f64) -> f64 {
        let span = (self.x_hi - self.x_lo).max(1e-12);
        let d = (a - b) / span;
        (-self.gamma * d * d).exp() + 1.0
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FitError> {
        check_lengths(xs, ys, 2)?;
        let n = xs.len();
        self.x_lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        self.x_hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let y_max = ys
            .iter()
            .copied()
            .fold(0.0f64, |m, y| m.max(y.abs()))
            .max(1e-12);
        self.y_scale = y_max;
        self.gamma = 1.0 / (2.0 * self.bandwidth_frac * self.bandwidth_frac);
        self.centers = xs.to_vec();
        let ys_n: Vec<f64> = ys.iter().map(|&y| y / y_max).collect();

        // Kernel matrix (with the bias-absorbing constant).
        let k: Vec<f64> = (0..n * n)
            .map(|ij| self.kernel(xs[ij / n], xs[ij % n]))
            .collect();

        // Initial kernel ridge solve: (K + λI) β = y. The ridge is absolute
        // (not scaled with n) so extra samples sharpen rather than shrink
        // the fit — mirroring sklearn's fixed-C behaviour in Table IV.
        let solve_for = |targets: &[f64]| -> Result<Vec<f64>, FitError> {
            let mut a = k.clone();
            for i in 0..n {
                a[i * n + i] += self.lambda;
            }
            let mut b = targets.to_vec();
            solve(&mut a, &mut b, n)
        };
        let mut betas = solve_for(&ys_n)?;

        // ε-insensitive refinement: pull targets to the tube boundary so
        // residuals inside the tube stop influencing the solution.
        let eps = self.epsilon_frac;
        for _ in 0..self.passes {
            let mut targets = Vec::with_capacity(n);
            for i in 0..n {
                let f: f64 = (0..n).map(|j| betas[j] * k[i * n + j]).sum();
                let r = f - ys_n[i];
                // Inside the tube: accept the current prediction; outside:
                // demand the tube boundary.
                let t = if r.abs() <= eps {
                    f
                } else {
                    ys_n[i] + eps * r.signum()
                };
                targets.push(t);
            }
            betas = solve_for(&targets)?;
        }
        self.betas = betas;
        Ok(())
    }

    fn predict(&self, x: f64) -> f64 {
        debug_assert!(!self.centers.is_empty(), "predict before fit");
        let mut f = 0.0;
        for (b, c) in self.betas.iter().zip(&self.centers) {
            f += b * self.kernel(x, *c);
        }
        f * self.y_scale
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_smooth_function_reasonably() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 400.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e6 + 250.0 * x + 0.08 * x * x).collect();
        let mut m = SvrRegressor::default_params();
        m.fit(&xs, &ys).unwrap();
        // Interpolation error within a few percent (paper: 3.8 %).
        let x = 1_800.0;
        let want = 1e6 + 250.0 * x + 0.08 * x * x;
        let rel = (m.predict(x) - want).abs() / want;
        assert!(rel < 0.05, "rel error {rel}");
    }

    #[test]
    fn more_samples_reduce_error() {
        // Paper Table IV: SVR improves from 3.80 % (10 samples) to 3.56 %
        // (50 samples).
        let f = |x: f64| 1e6 + 250.0 * x + 0.08 * x * x;
        let fit_with = |n: usize| {
            let xs: Vec<f64> = (0..n)
                .map(|i| 400.0 + 3_600.0 * i as f64 / (n - 1) as f64)
                .collect();
            let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
            let mut m = SvrRegressor::default_params();
            m.fit(&xs, &ys).unwrap();
            // Mean relative error over an in-range test grid.
            (0..20)
                .map(|i| {
                    let x = 500.0 + 3_300.0 * i as f64 / 19.0;
                    (m.predict(x) - f(x)).abs() / f(x)
                })
                .sum::<f64>()
                / 20.0
        };
        let e10 = fit_with(10);
        let e50 = fit_with(50);
        assert!(e50 <= e10 * 1.2, "e10 {e10} e50 {e50}");
        assert!(e50 < 0.03, "e50 {e50}");
    }

    #[test]
    fn worse_than_quadratic_polynomial_out_of_range() {
        use crate::PolynomialRegressor;
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 400.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e6 + 250.0 * x + 0.08 * x * x).collect();
        let mut svr = SvrRegressor::default_params();
        let mut quad = PolynomialRegressor::new(2);
        svr.fit(&xs, &ys).unwrap();
        quad.fit(&xs, &ys).unwrap();
        // Extrapolate 30 % beyond the training range: RBF kernels decay,
        // polynomials keep the trend.
        let x = 5_200.0;
        let want = 1e6 + 250.0 * x + 0.08 * x * x;
        let svr_err = (svr.predict(x) - want).abs() / want;
        let quad_err = (quad.predict(x) - want).abs() / want;
        assert!(
            svr_err > 10.0 * quad_err.max(1e-12),
            "svr {svr_err} quad {quad_err}"
        );
    }

    #[test]
    fn two_samples_suffice_to_fit() {
        let mut m = SvrRegressor::default_params();
        m.fit(&[0.0, 10.0], &[1.0, 2.0]).unwrap();
        assert!(m.predict(5.0).is_finite());
    }

    #[test]
    fn rejects_single_sample() {
        let mut m = SvrRegressor::default_params();
        assert!(matches!(
            m.fit(&[1.0], &[1.0]),
            Err(FitError::TooFewSamples { .. })
        ));
    }
}
