//! CART regression tree (1-D), the `DecisionTree` baseline of Table IV.
//!
//! Trees partition the x-axis into constant-valued leaves, so they cannot
//! extrapolate the polynomial growth of activation memory — which is exactly
//! why Table IV shows them overfitting with 10 samples (5.67 % error) and
//! still trailing the quadratic fit with 50.

use crate::traits::check_lengths;
use crate::{FitError, Regressor};

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        value: f64,
    },
    Split {
        threshold: f64,
        left: Box<TreeNode>,
        right: Box<TreeNode>,
    },
}

/// 1-D CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    max_depth: usize,
    min_leaf: usize,
    root: Option<TreeNode>,
}

impl DecisionTreeRegressor {
    /// Create an unfitted tree.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `max_depth` or `min_leaf` is zero.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        assert!(max_depth >= 1 && min_leaf >= 1);
        DecisionTreeRegressor {
            max_depth,
            min_leaf,
            root: None,
        }
    }

    /// sklearn-like defaults used by the Table IV comparison.
    #[must_use]
    pub fn default_params() -> Self {
        DecisionTreeRegressor::new(6, 1)
    }

    fn build(
        points: &mut [(f64, f64)],
        depth: usize,
        max_depth: usize,
        min_leaf: usize,
    ) -> TreeNode {
        let n = points.len();
        let mean = points.iter().map(|p| p.1).sum::<f64>() / n as f64;
        if depth >= max_depth || n < 2 * min_leaf {
            return TreeNode::Leaf { value: mean };
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Find the split minimising total SSE via prefix sums.
        let prefix: Vec<(f64, f64)> = points
            .iter()
            .scan((0.0, 0.0), |acc, p| {
                acc.0 += p.1;
                acc.1 += p.1 * p.1;
                Some(*acc)
            })
            .collect();
        let (total_sum, total_sq) = prefix[n - 1];
        let sse = |sum: f64, sq: f64, cnt: usize| sq - sum * sum / cnt as f64;
        let base_sse = sse(total_sum, total_sq, n);
        let mut best: Option<(usize, f64)> = None;
        for i in min_leaf..=(n - min_leaf) {
            if i < n && points[i - 1].0 == points[i].0 {
                continue; // cannot split between equal x
            }
            let (ls, lq) = prefix[i - 1];
            let rs = total_sum - ls;
            let rq = total_sq - lq;
            let cost = sse(ls, lq, i) + sse(rs, rq, n - i);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        match best {
            Some((i, cost)) if cost < base_sse - 1e-12 => {
                let threshold = (points[i - 1].0 + points[i].0) / 2.0;
                let (l, r) = points.split_at_mut(i);
                TreeNode::Split {
                    threshold,
                    left: Box::new(Self::build(l, depth + 1, max_depth, min_leaf)),
                    right: Box::new(Self::build(r, depth + 1, max_depth, min_leaf)),
                }
            }
            _ => TreeNode::Leaf { value: mean },
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FitError> {
        check_lengths(xs, ys, 1)?;
        let mut pts: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        self.root = Some(Self::build(&mut pts, 0, self.max_depth, self.min_leaf));
        Ok(())
    }

    fn predict(&self, x: f64) -> f64 {
        let mut node = self.root.as_ref().expect("predict before fit");
        loop {
            match node {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    threshold,
                    left,
                    right,
                } => {
                    node = if x <= *threshold { left } else { right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_piecewise_constant_exactly() {
        let xs = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let ys = [5.0, 5.0, 5.0, 9.0, 9.0, 9.0];
        let mut t = DecisionTreeRegressor::new(4, 1);
        t.fit(&xs, &ys).unwrap();
        assert_eq!(t.predict(2.0), 5.0);
        assert_eq!(t.predict(11.0), 9.0);
    }

    #[test]
    fn interpolates_within_training_range() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x).collect();
        let mut t = DecisionTreeRegressor::default_params();
        t.fit(&xs, &ys).unwrap();
        let got = t.predict(2_450.0);
        let want = 4_900.0;
        assert!((got - want).abs() / want < 0.2, "got {got}");
    }

    #[test]
    fn cannot_extrapolate_beyond_training_range() {
        // The key weakness versus the polynomial: predictions saturate at
        // the last leaf's mean.
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let mut t = DecisionTreeRegressor::default_params();
        t.fit(&xs, &ys).unwrap();
        let at_2000 = t.predict(2_000.0);
        assert!(
            at_2000 <= 1_000.0 * 1_000.0 + 1.0,
            "tree extrapolated: {at_2000}"
        );
        // True value is 4e6 — the tree is off by ~4x out of range.
        assert!(at_2000 < 0.5 * 4e6);
    }

    #[test]
    fn duplicate_x_values_do_not_split() {
        let xs = [5.0, 5.0, 5.0, 5.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let mut t = DecisionTreeRegressor::new(3, 1);
        t.fit(&xs, &ys).unwrap();
        assert!((t.predict(5.0) - 2.5).abs() < 1e-12);
    }
}
