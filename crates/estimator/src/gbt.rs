//! Gradient-boosted regression trees — the `XGBoost` stand-in of Table IV.
//!
//! Standard gradient boosting on the squared loss: each round fits a shallow
//! CART tree to the residuals. With hundreds of rounds its fit cost is
//! orders of magnitude above the polynomial's (Table IV: 429 ms vs 1 ms) and
//! prediction walks every tree (1.3 ms vs 16 µs) — reproduced here
//! structurally by the same round count.

use crate::traits::check_lengths;
use crate::tree::DecisionTreeRegressor;
use crate::{FitError, Regressor};

/// Gradient-boosted trees regressor.
#[derive(Debug, Clone)]
pub struct GbtRegressor {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Depth of each weak tree.
    pub tree_depth: usize,
    base: f64,
    trees: Vec<DecisionTreeRegressor>,
}

impl GbtRegressor {
    /// Create an unfitted booster.
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `n_rounds` is zero.
    pub fn new(n_rounds: usize, learning_rate: f64, tree_depth: usize) -> Self {
        assert!(n_rounds >= 1);
        GbtRegressor {
            n_rounds,
            learning_rate,
            tree_depth,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// XGBoost-like defaults (`n_estimators=300, eta=0.1, max_depth=3`).
    #[must_use]
    pub fn default_params() -> Self {
        GbtRegressor::new(300, 0.1, 3)
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True before fitting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for GbtRegressor {
    fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FitError> {
        check_lengths(xs, ys, 2)?;
        self.base = ys.iter().sum::<f64>() / ys.len() as f64;
        self.trees.clear();
        let mut residuals: Vec<f64> = ys.iter().map(|&y| y - self.base).collect();
        for _ in 0..self.n_rounds {
            let mut tree = DecisionTreeRegressor::new(self.tree_depth, 1);
            tree.fit(xs, &residuals)?;
            for (r, &x) in residuals.iter_mut().zip(xs) {
                *r -= self.learning_rate * tree.predict(x);
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: f64) -> f64 {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        let mut f = self.base;
        for t in &self.trees {
            f += self.learning_rate * t.predict(x);
        }
        f
    }

    fn name(&self) -> &'static str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosting_reduces_training_error() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 50.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 100.0 + 3.0 * x + 0.01 * x * x).collect();
        let train_err = |rounds: usize| {
            let mut g = GbtRegressor::new(rounds, 0.1, 3);
            g.fit(&xs, &ys).unwrap();
            xs.iter()
                .zip(&ys)
                .map(|(&x, &y)| (g.predict(x) - y).abs() / y)
                .sum::<f64>()
                / xs.len() as f64
        };
        let few = train_err(5);
        let many = train_err(200);
        assert!(many < few / 3.0, "few {few} many {many}");
    }

    #[test]
    fn like_trees_it_cannot_extrapolate() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let mut g = GbtRegressor::default_params();
        g.fit(&xs, &ys).unwrap();
        // Out-of-range prediction saturates around the max training y.
        assert!(
            g.predict(3_000.0) < 1.2e6,
            "extrapolated: {}",
            g.predict(3_000.0)
        );
    }

    #[test]
    fn tree_count_matches_rounds() {
        let mut g = GbtRegressor::new(25, 0.2, 2);
        g.fit(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.len(), 25);
    }
}
