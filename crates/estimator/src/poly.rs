//! Polynomial least-squares regression — the paper's chosen estimator.
//!
//! §IV-C argues per-layer activation bytes are at most quadratic in the
//! iteration input size, and Table IV shows the quadratic polynomial wins on
//! both accuracy (0.32 % error from 10 samples) and latency (~16 µs). We fit
//! by normal equations with x-scaling for conditioning and a tiny ridge
//! term, which is exact for the polynomial ground truths the simulator
//! produces.

use crate::linalg::solve;
use crate::traits::check_lengths;
use crate::{FitError, Regressor};

/// Polynomial regressor of a fixed order (`order + 1` coefficients).
///
/// ```
/// use mimose_estimator::{PolynomialRegressor, Regressor};
///
/// // Memory that grows quadratically with the input size, like attention.
/// let xs: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| 1e6 + 2.0 * x + 0.03 * x * x).collect();
/// let mut model = PolynomialRegressor::new(2);
/// model.fit(&xs, &ys).unwrap();
/// let pred = model.predict(1500.0);
/// let truth = 1e6 + 2.0 * 1500.0 + 0.03 * 1500.0 * 1500.0;
/// assert!((pred - truth).abs() / truth < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct PolynomialRegressor {
    order: usize,
    /// Coefficients c0..c_order over the *scaled* variable x/x_scale.
    coeffs: Vec<f64>,
    x_scale: f64,
}

impl PolynomialRegressor {
    /// Create an unfitted polynomial of the given order (0 = constant,
    /// 1 = linear, 2 = quadratic, 3 = cubic).
    #[must_use]
    ///
    /// # Panics
    ///
    /// Panics when `order` exceeds 8.
    pub fn new(order: usize) -> Self {
        assert!(order <= 8, "unsupported order {order}");
        PolynomialRegressor {
            order,
            coeffs: Vec::new(),
            x_scale: 1.0,
        }
    }

    /// The polynomial order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Fitted coefficients over the scaled variable (empty before `fit`).
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The x-scaling factor applied before evaluation: `predict(x)` computes
    /// the polynomial at `x / x_scale()`. Interval analyses need it to map
    /// scaled-variable extrema (e.g. a quadratic's vertex) back to real x.
    #[must_use]
    pub fn x_scale(&self) -> f64 {
        self.x_scale
    }
}

impl Regressor for PolynomialRegressor {
    fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FitError> {
        let k = self.order + 1;
        check_lengths(xs, ys, k)?;
        // Scale x into ~[0, 1] so the Vandermonde normal matrix stays
        // well-conditioned for x in the tens of thousands (input sizes).
        let x_scale = xs.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1.0);
        // Normal equations: (VᵀV + λI) c = Vᵀ y.
        let mut ata = vec![0.0; k * k];
        let mut atb = vec![0.0; k];
        let mut pows = vec![0.0; k];
        for (&x, &y) in xs.iter().zip(ys) {
            let xs_scaled = x / x_scale;
            let mut p = 1.0;
            for v in pows.iter_mut() {
                *v = p;
                p *= xs_scaled;
            }
            for i in 0..k {
                atb[i] += pows[i] * y;
                for j in 0..k {
                    ata[i * k + j] += pows[i] * pows[j];
                }
            }
        }
        // Tiny ridge: keeps duplicate-x sample sets solvable.
        let ridge = 1e-9 * xs.len() as f64;
        for i in 0..k {
            ata[i * k + i] += ridge;
        }
        let c = solve(&mut ata, &mut atb, k)?;
        self.coeffs = c;
        self.x_scale = x_scale;
        Ok(())
    }

    fn predict(&self, x: f64) -> f64 {
        debug_assert!(!self.coeffs.is_empty(), "predict before fit");
        let xs = x / self.x_scale;
        // Horner evaluation.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * xs + c)
    }

    fn name(&self) -> &'static str {
        match self.order {
            0 => "Polynomial (n=0)",
            1 => "Polynomial (n=1)",
            2 => "Polynomial (n=2)",
            3 => "Polynomial (n=3)",
            _ => "Polynomial",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_fit_is_exact_on_quadratic_data() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * 500) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x + 0.004 * x * x).collect();
        let mut p = PolynomialRegressor::new(2);
        p.fit(&xs, &ys).unwrap();
        for &x in &[700.0, 2_345.0, 6_000.0] {
            let want = 3.0 + 2.0 * x + 0.004 * x * x;
            let got = p.predict(x);
            assert!(
                (got - want).abs() / want < 1e-6,
                "x={x}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn linear_fit_underfits_quadratic_data() {
        // Mirrors Table IV: n=1 has ~4 % error where n=2 has ~0.3 %.
        let xs: Vec<f64> = (1..=10).map(|i| (i * 400) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e6 + 300.0 * x + 0.05 * x * x).collect();
        let mut lin = PolynomialRegressor::new(1);
        let mut quad = PolynomialRegressor::new(2);
        lin.fit(&xs, &ys).unwrap();
        quad.fit(&xs, &ys).unwrap();
        let rel = |m: &PolynomialRegressor, x: f64| {
            let want = 1e6 + 300.0 * x + 0.05 * x * x;
            (m.predict(x) - want).abs() / want
        };
        assert!(rel(&quad, 2_200.0) < 1e-6);
        assert!(rel(&lin, 2_200.0) > 10.0 * rel(&quad, 2_200.0).max(1e-12));
    }

    #[test]
    fn cubic_matches_quadratic_on_quadratic_data() {
        let xs: Vec<f64> = (1..=12).map(|i| (i * 300) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 10.0 + x + 0.01 * x * x).collect();
        let mut cubic = PolynomialRegressor::new(3);
        cubic.fit(&xs, &ys).unwrap();
        let x = 1_750.0;
        let want = 10.0 + x + 0.01 * x * x;
        assert!((cubic.predict(x) - want).abs() / want < 1e-5);
    }

    #[test]
    fn too_few_samples_rejected() {
        let mut p = PolynomialRegressor::new(2);
        assert!(matches!(
            p.fit(&[1.0, 2.0], &[1.0, 2.0]),
            Err(FitError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn large_input_sizes_stay_conditioned() {
        // Input sizes reach ~5e7 elements for detection batches; the scaled
        // fit must not blow up.
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 5e6).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e9 + 40.0 * x + 1e-9 * x * x).collect();
        let mut p = PolynomialRegressor::new(2);
        p.fit(&xs, &ys).unwrap();
        let x = 2.7e7;
        let want = 1e9 + 40.0 * x + 1e-9 * x * x;
        assert!((p.predict(x) - want).abs() / want < 1e-5);
    }
}
