//! # mimose-estimator
//!
//! From-scratch regression library backing the paper's *lightning memory
//! estimator* comparison (Tables IV and V): polynomial least squares
//! (orders 1–3), RBF ε-SVR, a CART regression tree, and gradient-boosted
//! trees as the XGBoost stand-in — all behind one [`Regressor`] trait.

#![warn(missing_docs)]

mod gbt;
mod linalg;
pub mod metrics;
mod poly;
mod svr;
mod traits;
mod tree;

pub use gbt::GbtRegressor;
pub use poly::PolynomialRegressor;
pub use svr::SvrRegressor;
pub use traits::{FitError, Regressor};
pub use tree::DecisionTreeRegressor;
